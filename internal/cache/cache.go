// Package cache provides verdictd's content-addressed result cache:
// SHA-256 keying over canonical inputs and an LRU store with bounded
// capacity.
//
// The cache is value-agnostic (it stores `any`); the server layer
// decides what a key covers (canonical model text + property +
// normalized options) and what a value is (a finished check result).
// The singleflight guarantee — N identical concurrent requests cost
// one underlying check — also lives in the server: job identity is
// the content address, so duplicates collapse at admission.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"sync"
)

// Key derives the content address of a request: the SHA-256 over the
// canonical parts, joined with NUL separators so no concatenation of
// distinct parts can collide with another split of the same bytes.
func Key(parts ...string) string {
	h := sha256.Sum256([]byte(strings.Join(parts, "\x00")))
	return hex.EncodeToString(h[:])
}

// LRU is a mutex-guarded least-recently-used map with a fixed entry
// capacity. Get refreshes recency; Add evicts the coldest entry once
// the capacity is exceeded.
type LRU struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent; values are *lruEntry
	items    map[string]*list.Element

	evictions int64
	onEvict   func(key string, value any)
}

type lruEntry struct {
	key   string
	value any
}

// NewLRU returns an LRU holding at most capacity entries (minimum 1).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{capacity: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value and refreshes its recency.
func (l *LRU) Get(key string) (any, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[key]
	if !ok {
		return nil, false
	}
	l.order.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

// OnEvict registers a callback invoked (outside the LRU's lock) for
// every entry displaced by capacity pressure — replacement via Add is
// not an eviction. Call it before the cache sees traffic.
func (l *LRU) OnEvict(fn func(key string, value any)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onEvict = fn
}

// Add inserts or replaces a value, evicting the least-recently-used
// entry when over capacity.
func (l *LRU) Add(key string, value any) {
	l.mu.Lock()
	if el, ok := l.items[key]; ok {
		el.Value.(*lruEntry).value = value
		l.order.MoveToFront(el)
		l.mu.Unlock()
		return
	}
	l.items[key] = l.order.PushFront(&lruEntry{key: key, value: value})
	var evicted []*lruEntry
	for l.order.Len() > l.capacity {
		oldest := l.order.Back()
		l.order.Remove(oldest)
		ent := oldest.Value.(*lruEntry)
		delete(l.items, ent.key)
		l.evictions++
		if l.onEvict != nil {
			evicted = append(evicted, ent)
		}
	}
	fn := l.onEvict
	l.mu.Unlock()
	for _, ent := range evicted {
		fn(ent.key, ent.value)
	}
}

// Keys returns the live keys, most recent first. A rebalance-time
// walk, not a hot path.
func (l *LRU) Keys() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, l.order.Len())
	for el := l.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry).key)
	}
	return out
}

// Len returns the number of live entries.
func (l *LRU) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.order.Len()
}

// Evictions returns how many entries have been displaced so far.
func (l *LRU) Evictions() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evictions
}

// Singleflight note: verdictd's duplicate suppression does not need a
// blocking Do-style group — jobs are asynchronous and their identity
// IS the content address, so the server dedupes at admission by
// looking the key up in its in-flight table before creating a job.
// This package therefore stays a pure store: Key + LRU.
