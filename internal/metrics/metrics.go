// Package metrics is a dependency-free Prometheus-text-format
// instrumentation registry for verdictd: counters, gauges, and
// histograms with optional labels, rendered deterministically (sorted
// families, sorted series) by an http.Handler.
//
// Only the slice of the exposition format the daemon needs is
// implemented — `# HELP`/`# TYPE` headers, label sets, and the
// cumulative _bucket/_sum/_count histogram triple — so the package
// stays a few hundred lines and imports nothing beyond the standard
// library.
package metrics

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds metric families and renders them. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []string

	mu      sync.Mutex
	series  map[string]*series
	buckets []float64 // histogram only
	// fn, when set, makes this an unlabeled function-backed family:
	// its single value is sampled at render time instead of being
	// pushed. Used for monotonic sources that already keep their own
	// count (cache evictions, journal corruption totals).
	fn func() float64
}

// series is one label-value combination of a family.
type series struct {
	labelValues []string
	value       float64   // counter/gauge payload
	counts      []float64 // histogram: per-bucket cumulative counts + +Inf at the end
	sum         float64   // histogram: sum of observations
	total       float64   // histogram: observation count
}

func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("metrics: duplicate family " + name)
	}
	f := &family{name: name, help: help, typ: typ, labels: labels,
		series: make(map[string]*series), buckets: buckets}
	r.families[name] = f
	return f
}

// Counter registers a monotonically increasing counter family.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return &Counter{r.register(name, help, "counter", labels, nil)}
}

// Gauge registers a gauge family (a value that can go up and down).
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return &Gauge{r.register(name, help, "gauge", labels, nil)}
}

// CounterFunc registers a counter family whose value is sampled from
// fn at scrape time. fn must be monotonically non-decreasing and safe
// to call concurrently.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", nil, nil).fn = fn
}

// GaugeFunc registers a gauge family sampled from fn at scrape time.
// fn must be safe to call concurrently.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", nil, nil).fn = fn
}

// Histogram registers a histogram family with the given upper bucket
// bounds (ascending; +Inf is appended implicitly).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if len(buckets) == 0 {
		panic("metrics: histogram " + name + " needs buckets")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("metrics: histogram " + name + " buckets not ascending")
		}
	}
	return &Histogram{r.register(name, help, "histogram", labels, buckets)}
}

func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), labelValues...)}
		if f.typ == "histogram" {
			s.counts = make([]float64, len(f.buckets)+1)
		}
		f.series[key] = s
	}
	return s
}

// Counter is a monotonically increasing metric.
type Counter struct{ f *family }

// Inc adds 1 to the series selected by the label values.
func (c *Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Add adds delta (must be >= 0) to the series.
func (c *Counter) Add(delta float64, labelValues ...string) {
	if delta < 0 {
		panic("metrics: counter decrease")
	}
	s := c.f.get(labelValues)
	c.f.mu.Lock()
	s.value += delta
	c.f.mu.Unlock()
}

// Value reads the current count (0 for a series never touched).
func (c *Counter) Value(labelValues ...string) float64 { return c.f.read(labelValues) }

// Gauge is a metric that can move both ways.
type Gauge struct{ f *family }

// Set pins the series to v.
func (g *Gauge) Set(v float64, labelValues ...string) {
	s := g.f.get(labelValues)
	g.f.mu.Lock()
	s.value = v
	g.f.mu.Unlock()
}

// Add moves the series by delta (may be negative).
func (g *Gauge) Add(delta float64, labelValues ...string) {
	s := g.f.get(labelValues)
	g.f.mu.Lock()
	s.value += delta
	g.f.mu.Unlock()
}

// Value reads the current gauge level.
func (g *Gauge) Value(labelValues ...string) float64 { return g.f.read(labelValues) }

func (f *family) read(labelValues []string) float64 {
	s := f.get(labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.typ == "histogram" {
		return s.total
	}
	return s.value
}

// Histogram accumulates observations into cumulative buckets.
type Histogram struct{ f *family }

// Observe records one observation.
func (h *Histogram) Observe(v float64, labelValues ...string) {
	s := h.f.get(labelValues)
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	for i, ub := range h.f.buckets {
		if v <= ub {
			s.counts[i]++
		}
	}
	s.counts[len(h.f.buckets)]++ // +Inf
	s.sum += v
	s.total++
}

// Count reads the number of observations in the series.
func (h *Histogram) Count(labelValues ...string) float64 { return h.f.read(labelValues) }

// ServeHTTP renders the registry in the Prometheus text exposition
// format, deterministically ordered.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(r.Render()))
}

// Render returns the full exposition text.
func (r *Registry) Render() string {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	return b.String()
}

func (f *family) render(b *strings.Builder) {
	if f.fn != nil {
		// Sample outside the lock — fn may itself take locks.
		v := f.fn()
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", f.name, f.help, f.name, f.typ, f.name, formatFloat(v))
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := f.series[k]
		if f.typ == "histogram" {
			for i, ub := range f.buckets {
				fmt.Fprintf(b, "%s_bucket%s %s\n", f.name,
					f.labelString(s.labelValues, "le", formatFloat(ub)), formatFloat(s.counts[i]))
			}
			fmt.Fprintf(b, "%s_bucket%s %s\n", f.name,
				f.labelString(s.labelValues, "le", "+Inf"), formatFloat(s.counts[len(f.buckets)]))
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, f.labelString(s.labelValues, "", ""), formatFloat(s.sum))
			fmt.Fprintf(b, "%s_count%s %s\n", f.name, f.labelString(s.labelValues, "", ""), formatFloat(s.total))
			continue
		}
		fmt.Fprintf(b, "%s%s %s\n", f.name, f.labelString(s.labelValues, "", ""), formatFloat(s.value))
	}
}

// labelString renders {a="x",b="y"} plus an optional extra pair (the
// histogram `le` bound); empty when there are no labels at all.
func (f *family) labelString(values []string, extraName, extraValue string) string {
	if len(f.labels) == 0 && extraName == "" {
		return ""
	}
	var parts []string
	for i, name := range f.labels {
		// %q escapes \, " and newlines exactly as the exposition
		// format requires.
		parts = append(parts, fmt.Sprintf("%s=%q", name, values[i]))
	}
	if extraName != "" {
		parts = append(parts, fmt.Sprintf("%s=%q", extraName, extraValue))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatFloat renders integral values without an exponent or decimal
// point (the common case for counters) and everything else with
// strconv's shortest representation.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
