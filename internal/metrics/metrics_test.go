package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRender(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("requests_total", "Total requests.", "code")
	g := reg.Gauge("queue_depth", "Jobs queued.")
	c.Inc("200")
	c.Add(2, "200")
	c.Inc("429")
	g.Set(5)
	g.Add(-2)

	out := reg.Render()
	for _, want := range []string{
		"# HELP requests_total Total requests.",
		"# TYPE requests_total counter",
		`requests_total{code="200"} 3`,
		`requests_total{code="429"} 1`,
		"# TYPE queue_depth gauge",
		"queue_depth 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if c.Value("200") != 3 || g.Value() != 3 {
		t.Errorf("readback: counter %v gauge %v, want 3 and 3", c.Value("200"), g.Value())
	}
}

func TestHistogramRender(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("latency_seconds", "Check latency.", []float64{0.1, 1}, "engine")
	h.Observe(0.05, "bmc")
	h.Observe(0.5, "bmc")
	h.Observe(10, "bmc")

	out := reg.Render()
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{engine="bmc",le="0.1"} 1`,
		`latency_seconds_bucket{engine="bmc",le="1"} 2`,
		`latency_seconds_bucket{engine="bmc",le="+Inf"} 3`,
		`latency_seconds_sum{engine="bmc"} 10.55`,
		`latency_seconds_count{engine="bmc"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if h.Count("bmc") != 3 {
		t.Errorf("Count = %v, want 3", h.Count("bmc"))
	}
}

func TestRenderDeterministicOrder(t *testing.T) {
	reg := NewRegistry()
	b := reg.Counter("bbb_total", "b", "l")
	a := reg.Counter("aaa_total", "a")
	b.Inc("z")
	b.Inc("a")
	a.Inc()
	first := reg.Render()
	if second := reg.Render(); first != second {
		t.Fatalf("render not deterministic:\n%s\n---\n%s", first, second)
	}
	if strings.Index(first, "aaa_total") > strings.Index(first, "bbb_total") {
		t.Errorf("families not sorted:\n%s", first)
	}
	if strings.Index(first, `{l="a"}`) > strings.Index(first, `{l="z"}`) {
		t.Errorf("series not sorted:\n%s", first)
	}
}

func TestServeHTTP(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x").Inc()
	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body:\n%s", rec.Body.String())
	}
}

// TestConcurrentUpdates runs under -race in CI: concurrent writers and
// renderers must not race, and counts must not be lost.
func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops_total", "ops", "worker")
	h := reg.Histogram("dur_seconds", "dur", []float64{1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w))
			for i := 0; i < 1000; i++ {
				c.Inc(label)
				h.Observe(0.5)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		reg.Render()
	}
	wg.Wait()
	var total float64
	for w := 0; w < 8; w++ {
		total += c.Value(string(rune('a' + w)))
	}
	if total != 8000 || h.Count() != 8000 {
		t.Errorf("lost updates: counter %v histogram %v, want 8000", total, h.Count())
	}
}

// TestFuncFamilies: CounterFunc/GaugeFunc sample their source at
// render time, so the exposition always reflects the current value
// without a push site.
func TestFuncFamilies(t *testing.T) {
	reg := NewRegistry()
	var evictions float64
	reg.CounterFunc("cache_evictions_total", "Entries displaced.", func() float64 { return evictions })
	reg.GaugeFunc("journal_bytes", "Journal footprint.", func() float64 { return 42 })

	out := reg.Render()
	for _, want := range []string{
		"# TYPE cache_evictions_total counter",
		"cache_evictions_total 0",
		"# TYPE journal_bytes gauge",
		"journal_bytes 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	evictions = 7
	if out := reg.Render(); !strings.Contains(out, "cache_evictions_total 7") {
		t.Errorf("second render did not resample:\n%s", out)
	}
}
