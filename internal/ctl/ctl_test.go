package ctl

import (
	"strings"
	"testing"

	"verdict/internal/expr"
)

func atomP() *Formula {
	return Atom((&expr.Var{Name: "p", T: expr.Bool()}).Ref())
}

// normalizedOnly checks the Normalize postcondition: only the
// existential basis remains.
func normalizedOnly(t *testing.T, f *Formula) {
	t.Helper()
	switch f.Kind {
	case KindAtom, KindNot, KindAnd, KindOr, KindEX, KindEU, KindEG:
	default:
		t.Errorf("normalized formula contains %v", f.Kind)
	}
	if f.L != nil {
		normalizedOnly(t, f.L)
	}
	if f.R != nil {
		normalizedOnly(t, f.R)
	}
}

func TestNormalizeBasis(t *testing.T) {
	p, q := atomP(), atomP()
	cases := []*Formula{
		AG(p),
		AF(p),
		AX(p),
		AU(p, q),
		EF(p),
		Implies(AG(p), EF(And(p, Not(q)))),
		AG(AF(EG(p))),
	}
	for _, f := range cases {
		normalizedOnly(t, Normalize(f))
	}
}

func TestNormalizeIdentities(t *testing.T) {
	p := atomP()
	// EF p = E[true U p]
	f := Normalize(EF(p))
	if f.Kind != KindEU || !f.L.Atom.IsTrue() {
		t.Errorf("EF normalization = %s", f)
	}
	// AX p = ¬EX¬p
	f = Normalize(AX(p))
	if f.Kind != KindNot || f.L.Kind != KindEX || f.L.L.Kind != KindNot {
		t.Errorf("AX normalization = %s", f)
	}
	// AG p = ¬E[true U ¬p]
	f = Normalize(AG(p))
	if f.Kind != KindNot || f.L.Kind != KindEU {
		t.Errorf("AG normalization = %s", f)
	}
}

func TestAtomValidation(t *testing.T) {
	x := &expr.Var{Name: "x", T: expr.Int(0, 3)}
	assertPanics(t, func() { Atom(x.Ref()) })
	b := &expr.Var{Name: "b", T: expr.Bool()}
	assertPanics(t, func() { Atom(expr.Iff(b.Next(), b.Ref())) })
}

func TestString(t *testing.T) {
	p := atomP()
	s := AU(p, EG(p)).String()
	for _, frag := range []string{"A[", "U", "EG"} {
		if !strings.Contains(s, frag) {
			t.Errorf("%q missing %q", s, frag)
		}
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
