// Package ctl defines computation tree logic formulas over expr atoms.
// Evaluation happens in internal/mc via BDD fixpoints; this package
// provides the AST and the normalization into the existential basis
// {EX, EU, EG}.
package ctl

import (
	"fmt"

	"verdict/internal/expr"
)

// Kind enumerates CTL constructors.
type Kind int

// Formula kinds. The existential basis is EX/EU/EG; everything else
// normalizes into it.
const (
	KindAtom Kind = iota
	KindNot
	KindAnd
	KindOr
	KindEX
	KindEU
	KindEG
	KindEF
	KindAX
	KindAF
	KindAG
	KindAU
)

// Formula is an immutable CTL formula.
type Formula struct {
	Kind Kind
	Atom *expr.Expr
	L, R *Formula
}

// Atom wraps a boolean state predicate.
func Atom(e *expr.Expr) *Formula {
	if e.Type().Kind != expr.KindBool {
		panic(fmt.Sprintf("ctl: atom of type %s, want bool", e.Type()))
	}
	if expr.HasNext(e) {
		panic("ctl: atom mentions next()")
	}
	return &Formula{Kind: KindAtom, Atom: e}
}

// True is the constant-true formula.
func True() *Formula { return Atom(expr.True()) }

// Not negates f.
func Not(f *Formula) *Formula { return &Formula{Kind: KindNot, L: f} }

// And conjoins a and b.
func And(a, b *Formula) *Formula { return &Formula{Kind: KindAnd, L: a, R: b} }

// Or disjoins a and b.
func Or(a, b *Formula) *Formula { return &Formula{Kind: KindOr, L: a, R: b} }

// Implies returns ¬a ∨ b.
func Implies(a, b *Formula) *Formula { return Or(Not(a), b) }

// EX returns "some successor satisfies f".
func EX(f *Formula) *Formula { return &Formula{Kind: KindEX, L: f} }

// EF returns "some path eventually reaches f".
func EF(f *Formula) *Formula { return &Formula{Kind: KindEF, L: f} }

// EG returns "some path satisfies f forever".
func EG(f *Formula) *Formula { return &Formula{Kind: KindEG, L: f} }

// EU returns "some path satisfies a until b".
func EU(a, b *Formula) *Formula { return &Formula{Kind: KindEU, L: a, R: b} }

// AX returns "every successor satisfies f".
func AX(f *Formula) *Formula { return &Formula{Kind: KindAX, L: f} }

// AF returns "every path eventually reaches f".
func AF(f *Formula) *Formula { return &Formula{Kind: KindAF, L: f} }

// AG returns "every path satisfies f forever" — CTL's safety shape.
func AG(f *Formula) *Formula { return &Formula{Kind: KindAG, L: f} }

// AU returns "every path satisfies a until b".
func AU(a, b *Formula) *Formula { return &Formula{Kind: KindAU, L: a, R: b} }

// Normalize rewrites f into the existential basis: only Atom, Not,
// And, Or, EX, EU, EG remain.
func Normalize(f *Formula) *Formula {
	switch f.Kind {
	case KindAtom:
		return f
	case KindNot:
		return Not(Normalize(f.L))
	case KindAnd:
		return And(Normalize(f.L), Normalize(f.R))
	case KindOr:
		return Or(Normalize(f.L), Normalize(f.R))
	case KindEX:
		return EX(Normalize(f.L))
	case KindEU:
		return EU(Normalize(f.L), Normalize(f.R))
	case KindEG:
		return EG(Normalize(f.L))
	case KindEF: // EF f = E[true U f]
		return EU(True(), Normalize(f.L))
	case KindAX: // AX f = ¬EX ¬f
		return Not(EX(Not(Normalize(f.L))))
	case KindAF: // AF f = ¬EG ¬f
		return Not(EG(Not(Normalize(f.L))))
	case KindAG: // AG f = ¬EF ¬f
		return Not(EU(True(), Not(Normalize(f.L))))
	case KindAU: // A[a U b] = ¬(E[¬b U (¬a ∧ ¬b)] ∨ EG ¬b)
		a, b := Normalize(f.L), Normalize(f.R)
		return Not(Or(EU(Not(b), And(Not(a), Not(b))), EG(Not(b))))
	}
	panic("ctl: bad kind")
}

func (f *Formula) String() string {
	switch f.Kind {
	case KindAtom:
		return "(" + f.Atom.String() + ")"
	case KindNot:
		return "!" + f.L.String()
	case KindAnd:
		return "(" + f.L.String() + " & " + f.R.String() + ")"
	case KindOr:
		return "(" + f.L.String() + " | " + f.R.String() + ")"
	case KindEX:
		return "EX " + f.L.String()
	case KindEU:
		return "E[" + f.L.String() + " U " + f.R.String() + "]"
	case KindEG:
		return "EG " + f.L.String()
	case KindEF:
		return "EF " + f.L.String()
	case KindAX:
		return "AX " + f.L.String()
	case KindAF:
		return "AF " + f.L.String()
	case KindAG:
		return "AG " + f.L.String()
	case KindAU:
		return "A[" + f.L.String() + " U " + f.R.String() + "]"
	}
	return "?"
}
