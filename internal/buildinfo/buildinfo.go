// Package buildinfo renders the module version and VCS revision
// baked into the binary by the Go toolchain — the payload of the
// -version flag on verdict, verdict-bench, and verdictd.
package buildinfo

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// String returns a one-line "name version (rev, dirty?, go)" stamp.
// Every field degrades gracefully: binaries built outside a module or
// without VCS metadata still report what is known.
func String(name string) string {
	version, revision, modified, goVersion := "(devel)", "", false, ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		goVersion = bi.GoVersion
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.modified":
				modified = s.Value == "true"
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", name, version)
	var extras []string
	if revision != "" {
		rev := revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if modified {
			rev += "-dirty"
		}
		extras = append(extras, rev)
	}
	if goVersion != "" {
		extras = append(extras, goVersion)
	}
	if len(extras) > 0 {
		fmt.Fprintf(&b, " (%s)", strings.Join(extras, ", "))
	}
	return b.String()
}
