package buildinfo

import (
	"strings"
	"testing"
)

func TestStringHasNameAndVersion(t *testing.T) {
	s := String("verdictd")
	if !strings.HasPrefix(s, "verdictd ") {
		t.Fatalf("stamp %q does not lead with the binary name", s)
	}
	if len(strings.Fields(s)) < 2 {
		t.Fatalf("stamp %q has no version field", s)
	}
	if strings.Contains(s, "\n") {
		t.Fatalf("stamp %q is not one line", s)
	}
}
