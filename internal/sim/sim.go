// Package sim is a discrete-time cluster simulator with executable
// orchestration controllers: scheduler, descheduler, deployment
// controller, taint manager, horizontal pod autoscaler and rolling
// update controller.
//
// It substitutes for the paper's live 6-VM Kubernetes cluster: the
// observable of the Figure 2 experiment (a pod bouncing between
// worker 2 and worker 3 at the descheduler's cadence) is a property of
// the controller decision rules, which the simulator executes
// faithfully at the same periods. One tick is one minute.
package sim

import (
	"fmt"
	"sort"
)

// Pod is a scheduled unit of work.
type Pod struct {
	Name        string
	App         string
	RequestCPU  int // percent of a node
	UsageCPU    int // observed usage, percent
	Node        string
	Tolerations map[string]bool
	// termNode/termUntil keep the pod's resources reserved on its old
	// node through the next tick after eviction (graceful
	// termination), which is what pushes the scheduler to the other
	// worker in Figure 2.
	termNode  string
	termUntil int
}

// Pending reports whether the pod awaits scheduling.
func (p *Pod) Pending() bool { return p.Node == "" }

// Node is a worker machine.
type Node struct {
	Name     string
	Capacity int // percent, normally 100
	BaseLoad int // resident system load, percent
	Taints   map[string]bool
}

// Deployment is a replica spec maintained by the deployment controller.
type Deployment struct {
	App        string
	Replicas   int
	RequestCPU int
	UsageCPU   int
	Toleration map[string]bool
}

// Event records one controller action.
type Event struct {
	Time       int
	Controller string
	Action     string // "create", "delete", "bind", "evict", "scale"
	Pod        string
	Node       string
	Detail     string
}

func (e Event) String() string {
	return fmt.Sprintf("t=%02d %-20s %-6s pod=%-12s node=%-8s %s",
		e.Time, e.Controller, e.Action, e.Pod, e.Node, e.Detail)
}

// Controller is a periodic control loop.
type Controller interface {
	// Name identifies the controller in the event log.
	Name() string
	// Period is the number of ticks between runs (>= 1).
	Period() int
	// Tick runs one reconciliation pass.
	Tick(c *Cluster)
}

// Cluster is the simulated system state.
type Cluster struct {
	Nodes       []*Node
	Pods        map[string]*Pod
	Deployments []*Deployment
	Controllers []Controller
	Now         int
	Events      []Event

	podSeq int
}

// New returns an empty cluster.
func New() *Cluster {
	return &Cluster{Pods: make(map[string]*Pod)}
}

// AddNode registers a worker.
func (c *Cluster) AddNode(n *Node) {
	if n.Taints == nil {
		n.Taints = map[string]bool{}
	}
	c.Nodes = append(c.Nodes, n)
}

// AddDeployment registers a replica spec.
func (c *Cluster) AddDeployment(d *Deployment) {
	c.Deployments = append(c.Deployments, d)
}

// AddController registers a control loop; controllers run in
// registration order on their periods.
func (c *Cluster) AddController(ctl Controller) {
	c.Controllers = append(c.Controllers, ctl)
}

// Record appends an event.
func (c *Cluster) Record(ctl, action, pod, node, detail string) {
	c.Events = append(c.Events, Event{
		Time: c.Now, Controller: ctl, Action: action, Pod: pod, Node: node, Detail: detail,
	})
}

// nodeByName returns the node or nil.
func (c *Cluster) nodeByName(name string) *Node {
	for _, n := range c.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// RequestedOn sums CPU requests bound or terminating on a node,
// including the node's base load.
func (c *Cluster) RequestedOn(node string) int {
	n := c.nodeByName(node)
	total := 0
	if n != nil {
		total = n.BaseLoad
	}
	for _, p := range c.sortedPods() {
		if p.Node == node || (p.termNode == node && c.Now <= p.termUntil) {
			total += p.RequestCPU
		}
	}
	return total
}

// UtilizationOn sums observed CPU usage on a node (plus base load).
func (c *Cluster) UtilizationOn(node string) int {
	n := c.nodeByName(node)
	total := 0
	if n != nil {
		total = n.BaseLoad
	}
	for _, p := range c.sortedPods() {
		if p.Node == node {
			total += p.UsageCPU
		}
	}
	return total
}

// PodsOn lists pods bound to a node, name-sorted.
func (c *Cluster) PodsOn(node string) []*Pod {
	var out []*Pod
	for _, p := range c.sortedPods() {
		if p.Node == node {
			out = append(out, p)
		}
	}
	return out
}

// PodsOf lists pods of an app (bound or pending), name-sorted.
func (c *Cluster) PodsOf(app string) []*Pod {
	var out []*Pod
	for _, p := range c.sortedPods() {
		if p.App == app {
			out = append(out, p)
		}
	}
	return out
}

func (c *Cluster) sortedPods() []*Pod {
	names := make([]string, 0, len(c.Pods))
	for n := range c.Pods {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Pod, len(names))
	for i, n := range names {
		out[i] = c.Pods[n]
	}
	return out
}

// CreatePod instantiates a pod for a deployment spec.
func (c *Cluster) CreatePod(ctl string, d *Deployment) *Pod {
	c.podSeq++
	p := &Pod{
		Name:        fmt.Sprintf("%s-%d", d.App, c.podSeq),
		App:         d.App,
		RequestCPU:  d.RequestCPU,
		UsageCPU:    d.UsageCPU,
		Tolerations: d.Toleration,
	}
	if p.Tolerations == nil {
		p.Tolerations = map[string]bool{}
	}
	c.Pods[p.Name] = p
	c.Record(ctl, "create", p.Name, "", "")
	return p
}

// DeletePod removes a pod entirely.
func (c *Cluster) DeletePod(ctl string, p *Pod, why string) {
	delete(c.Pods, p.Name)
	c.Record(ctl, "delete", p.Name, p.Node, why)
}

// Evict unbinds a pod; its resources stay reserved on the old node
// through the next tick (graceful termination) and it goes back to
// pending.
func (c *Cluster) Evict(ctl string, p *Pod, why string) {
	old := p.Node
	p.termNode = old
	p.termUntil = c.Now + 1
	p.Node = ""
	c.Record(ctl, "evict", p.Name, old, why)
}

// Step advances one tick, running due controllers in order.
func (c *Cluster) Step() {
	c.Now++
	for _, ctl := range c.Controllers {
		if c.Now%ctl.Period() == 0 {
			ctl.Tick(c)
		}
	}
}

// Run advances n ticks.
func (c *Cluster) Run(n int) {
	for i := 0; i < n; i++ {
		c.Step()
	}
}
