package sim

import (
	"strings"
	"testing"
)

// countEvents filters the event log by action, optionally at one tick
// (at < 0 means any tick).
func countEvents(c *Cluster, action string, at int) []Event {
	var out []Event
	for _, e := range c.Events {
		if e.Action == action && (at < 0 || e.Time == at) {
			out = append(out, e)
		}
	}
	return out
}

// TestBindAndEvictSameTick pins the controller-ordering semantics:
// within one tick the scheduler binds a pending pod and the
// descheduler — registered after it, as in the Figure 2 cluster —
// evicts it again, because the node's base load alone exceeds the
// eviction threshold. The pod ends the tick pending with its request
// still reserved on the node (graceful termination).
func TestBindAndEvictSameTick(t *testing.T) {
	c := New()
	c.AddNode(&Node{Name: "w2", Capacity: 100, BaseLoad: 60})
	c.AddDeployment(&Deployment{App: "web", Replicas: 1, RequestCPU: 30, UsageCPU: 30})
	c.AddController(&DeploymentController{Every: 1})
	c.AddController(&Scheduler{Every: 1})
	c.AddController(&Descheduler{Every: 1, Threshold: 55})

	c.Step()
	binds := countEvents(c, "bind", 1)
	evicts := countEvents(c, "evict", 1)
	if len(binds) != 1 || len(evicts) != 1 {
		t.Fatalf("tick 1: %d bind(s), %d evict(s), want 1 and 1\n%v", len(binds), len(evicts), c.Events)
	}
	if binds[0].Pod != evicts[0].Pod {
		t.Fatalf("bind and evict hit different pods: %q vs %q", binds[0].Pod, evicts[0].Pod)
	}
	pod := c.Pods[binds[0].Pod]
	if !pod.Pending() {
		t.Fatalf("pod bound to %q after same-tick eviction, want pending", pod.Node)
	}
	// Graceful termination: the evicted pod's request stays reserved on
	// w2 through the next tick, so the scheduler cannot immediately
	// re-bind it there (60 base + 30 reserved + 30 request > 100).
	if got := c.RequestedOn("w2"); got != 90 {
		t.Fatalf("RequestedOn(w2) after eviction = %d, want 90 (base 60 + terminating 30)", got)
	}
	c.Step()
	if len(countEvents(c, "bind", 2)) != 0 {
		t.Fatalf("tick 2: pod re-bound while its own termination reservation blocks the node\n%v", c.Events)
	}
	// Tick 3: the reservation expired, so the bind/evict cycle repeats
	// — the single-node analogue of the Figure 2 oscillation.
	c.Step()
	if len(countEvents(c, "bind", 3)) != 1 || len(countEvents(c, "evict", 3)) != 1 {
		t.Fatalf("tick 3: want the bind/evict cycle to repeat\n%v", c.Events)
	}
}

// TestDeschedulerThresholdBoundary pins the comparison direction the
// verification models encode: LowNodeUtilization evicts strictly
// above the threshold, so a node sitting exactly at it is stable.
func TestDeschedulerThresholdBoundary(t *testing.T) {
	build := func(threshold int) *Cluster {
		c := New()
		c.AddNode(&Node{Name: "w", Capacity: 100, BaseLoad: 40})
		c.AddDeployment(&Deployment{App: "web", Replicas: 1, RequestCPU: 15, UsageCPU: 15})
		c.AddController(&DeploymentController{Every: 1})
		c.AddController(&Scheduler{Every: 1})
		c.AddController(&Descheduler{Every: 1, Threshold: threshold})
		return c
	}

	// Utilization is exactly 55 (base 40 + usage 15): threshold 55
	// must never evict.
	at := build(55)
	at.Run(5)
	if ev := countEvents(at, "evict", -1); len(ev) != 0 {
		t.Fatalf("threshold == utilization: %d eviction(s), want 0\n%v", len(ev), ev)
	}
	if pods := at.PodsOn("w"); len(pods) != 1 {
		t.Fatalf("pod not stably bound at the boundary: %d pod(s) on w", len(pods))
	}

	// One percent lower and the same cluster churns.
	below := build(54)
	below.Run(5)
	ev := countEvents(below, "evict", -1)
	if len(ev) == 0 {
		t.Fatal("threshold one below utilization: no evictions, want churn")
	}
	if !strings.Contains(ev[0].Detail, "util 55% > 54%") {
		t.Fatalf("eviction reason %q does not cite the boundary arithmetic", ev[0].Detail)
	}
}

// TestThresholdAndDuplicatesSweepEvictOnce: when LowNodeUtilization
// clears a node, the RemoveDuplicates sweep running in the same tick
// must not evict the already-unbound pods a second time.
func TestThresholdAndDuplicatesSweepEvictOnce(t *testing.T) {
	c := New()
	c.AddNode(&Node{Name: "w", Capacity: 200, BaseLoad: 0})
	dep := &Deployment{App: "web", Replicas: 2, RequestCPU: 40, UsageCPU: 40}
	c.AddDeployment(dep)
	c.AddController(&DeploymentController{Every: 1})
	c.AddController(&Scheduler{Every: 1})
	c.AddController(&Descheduler{Every: 1, Threshold: 50, RemoveDuplicates: true})

	c.Step()
	// Both replicas land on the only node (util 80 > 50): the
	// threshold sweep evicts both; RemoveDuplicates finds the node
	// empty. Exactly one eviction per pod.
	evicts := countEvents(c, "evict", 1)
	if len(evicts) != 2 {
		t.Fatalf("tick 1: %d evictions, want exactly 2 (one per pod)\n%v", len(evicts), c.Events)
	}
	seen := map[string]int{}
	for _, e := range evicts {
		seen[e.Pod]++
	}
	for pod, n := range seen {
		if n != 1 {
			t.Fatalf("pod %s evicted %d times in one tick", pod, n)
		}
	}
}
