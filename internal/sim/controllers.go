package sim

import "fmt"

// Scheduler binds pending pods: it filters nodes with insufficient
// free requested capacity (and, unless IgnoreTaints, nodes whose
// taints the pod does not tolerate), then ranks the remainder by least
// requested CPU — the paper's §2 description of the Kubernetes
// scheduler. Ties break by node registration order.
type Scheduler struct {
	Every        int
	IgnoreTaints bool
}

// Name implements Controller.
func (s *Scheduler) Name() string { return "scheduler" }

// Period implements Controller.
func (s *Scheduler) Period() int { return max(1, s.Every) }

// Tick implements Controller.
func (s *Scheduler) Tick(c *Cluster) {
	for _, p := range c.sortedPods() {
		if !p.Pending() {
			continue
		}
		var best *Node
		bestReq := 0
		for _, n := range c.Nodes {
			if !s.IgnoreTaints && !toleratesAll(p, n) {
				continue
			}
			req := c.RequestedOn(n.Name)
			if req+p.RequestCPU > n.Capacity {
				continue
			}
			if best == nil || req < bestReq {
				best, bestReq = n, req
			}
		}
		if best == nil {
			continue // stays pending
		}
		p.Node = best.Name
		c.Record(s.Name(), "bind", p.Name, best.Name,
			fmt.Sprintf("requested=%d%%", bestReq))
	}
}

func toleratesAll(p *Pod, n *Node) bool {
	for t := range n.Taints {
		if !p.Tolerations[t] {
			return false
		}
	}
	return true
}

// Descheduler implements the two strategies from §2/§3.3.
type Descheduler struct {
	Every int
	// LowNodeUtilization evicts every pod from nodes whose observed
	// utilization exceeds Threshold (percent). Disabled when
	// Threshold < 0.
	Threshold int
	// RemoveDuplicates evicts surplus same-app pods sharing a node.
	RemoveDuplicates bool
}

// Name implements Controller.
func (d *Descheduler) Name() string { return "descheduler" }

// Period implements Controller.
func (d *Descheduler) Period() int { return max(1, d.Every) }

// Tick implements Controller.
func (d *Descheduler) Tick(c *Cluster) {
	if d.Threshold >= 0 {
		for _, n := range c.Nodes {
			util := c.UtilizationOn(n.Name)
			if util <= d.Threshold {
				continue
			}
			for _, p := range c.PodsOn(n.Name) {
				c.Evict(d.Name(), p, fmt.Sprintf("LowNodeUtilization: util %d%% > %d%%", util, d.Threshold))
			}
		}
	}
	if d.RemoveDuplicates {
		for _, n := range c.Nodes {
			seen := map[string]bool{}
			for _, p := range c.PodsOn(n.Name) {
				if seen[p.App] {
					c.Evict(d.Name(), p, "RemoveDuplicates")
					continue
				}
				seen[p.App] = true
			}
		}
	}
}

// DeploymentController maintains each deployment's replica count,
// creating missing pods and deleting surplus ones (§2).
type DeploymentController struct {
	Every int
}

// Name implements Controller.
func (d *DeploymentController) Name() string { return "deployment-controller" }

// Period implements Controller.
func (d *DeploymentController) Period() int { return max(1, d.Every) }

// Tick implements Controller.
func (d *DeploymentController) Tick(c *Cluster) {
	for _, dep := range c.Deployments {
		pods := c.PodsOf(dep.App)
		for len(pods) < dep.Replicas {
			pods = append(pods, c.CreatePod(d.Name(), dep))
		}
		for len(pods) > dep.Replicas {
			victim := pods[len(pods)-1]
			pods = pods[:len(pods)-1]
			c.DeletePod(d.Name(), victim, "scale down")
		}
	}
}

// TaintManager evicts pods running on nodes whose taints they do not
// tolerate (the NoExecute behavior behind issue #75913).
type TaintManager struct {
	Every int
}

// Name implements Controller.
func (t *TaintManager) Name() string { return "taint-manager" }

// Period implements Controller.
func (t *TaintManager) Period() int { return max(1, t.Every) }

// Tick implements Controller.
func (t *TaintManager) Tick(c *Cluster) {
	for _, n := range c.Nodes {
		if len(n.Taints) == 0 {
			continue
		}
		for _, p := range c.PodsOn(n.Name) {
			if !toleratesAll(p, n) {
				// NoExecute evictions delete the pod object; the
				// deployment controller recreates it — the loop of
				// issue #75913.
				c.DeletePod(t.Name(), p, "NoExecute taint")
			}
		}
	}
}

// HPA is a horizontal pod autoscaler. The defective mode reproduces
// issue #90461: it treats the observed pod count (inflated by the
// rolling-update surge) as the current replica count and adopts it as
// the new expected count.
type HPA struct {
	Every int
	App   string
	Max   int
	// ReportsExpectedAsCurrent enables the defect.
	ReportsExpectedAsCurrent bool
}

// Name implements Controller.
func (h *HPA) Name() string { return "hpa" }

// Period implements Controller.
func (h *HPA) Period() int { return max(1, h.Every) }

// Tick implements Controller.
func (h *HPA) Tick(c *Cluster) {
	for _, dep := range c.Deployments {
		if dep.App != h.App {
			continue
		}
		if !h.ReportsExpectedAsCurrent {
			return // steady load: a correct HPA keeps the spec
		}
		current := len(c.PodsOf(dep.App))
		if current > dep.Replicas && dep.Replicas < h.Max {
			dep.Replicas = min(current, h.Max)
			c.Record(h.Name(), "scale", "", "",
				fmt.Sprintf("app=%s replicas->%d (defect: current includes surge)", dep.App, dep.Replicas))
		}
	}
}

// RollingUpdateController rolls a deployment: while the update is in
// progress it may run up to MaxSurge additional pods beyond the spec.
type RollingUpdateController struct {
	Every    int
	App      string
	MaxSurge int
	// Rounds bounds how long the rollout keeps surging (0 = forever).
	Rounds int
	done   int
}

// Name implements Controller.
func (r *RollingUpdateController) Name() string { return "rolling-update" }

// Period implements Controller.
func (r *RollingUpdateController) Period() int { return max(1, r.Every) }

// Tick implements Controller.
func (r *RollingUpdateController) Tick(c *Cluster) {
	if r.Rounds > 0 && r.done >= r.Rounds {
		return
	}
	for _, dep := range c.Deployments {
		if dep.App != r.App {
			continue
		}
		pods := c.PodsOf(dep.App)
		if len(pods) > dep.Replicas {
			// Finish the previous surge round: retire old pods down
			// to the (possibly just-raised) spec.
			for len(pods) > dep.Replicas {
				victim := pods[0]
				pods = pods[1:]
				c.DeletePod(r.Name(), victim, "rollout retired old pod")
			}
			continue
		}
		// Surge: create replacement pods ahead of terminating old
		// ones. The inflated pod count is visible to anything sampling
		// "current replicas" until the next retirement round — the
		// window the defective HPA of issue #90461 reads.
		for i := 0; i < r.MaxSurge; i++ {
			pods = append(pods, c.CreatePod(r.Name(), dep))
		}
		r.done++
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
