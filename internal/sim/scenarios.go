package sim

import "fmt"

// PlacementSample records where an app's pod ran at one minute.
type PlacementSample struct {
	Minute int
	// Worker is the 1-based worker index hosting the pod, or 0 while
	// pending.
	Worker int
}

// Figure2Config mirrors the paper's live experiment: a 3-worker
// cluster, one CPU-intensive pod requesting 50% CPU, a descheduler
// cronjob every 2 minutes with a LowNodeUtilization threshold of 45%.
type Figure2Config struct {
	RequestCPU int // default 50
	Threshold  int // default 45
	Minutes    int // default 30
	// Worker1Load is the resident load keeping worker 1 out of play
	// (the paper's cluster ran control-plane components there).
	Worker1Load int // default 60
}

// Figure2 runs the descheduler-oscillation experiment and returns the
// minute-by-minute placement of the app pod (the series plotted in the
// paper's Figure 2) plus the cluster for event inspection.
func Figure2(cfg Figure2Config) ([]PlacementSample, *Cluster) {
	if cfg.RequestCPU == 0 {
		cfg.RequestCPU = 50
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 45
	}
	if cfg.Minutes == 0 {
		cfg.Minutes = 30
	}
	if cfg.Worker1Load == 0 {
		cfg.Worker1Load = 60
	}
	c := New()
	c.AddNode(&Node{Name: "worker1", Capacity: 100, BaseLoad: cfg.Worker1Load})
	c.AddNode(&Node{Name: "worker2", Capacity: 100})
	c.AddNode(&Node{Name: "worker3", Capacity: 100})
	c.AddDeployment(&Deployment{
		App: "app", Replicas: 1,
		RequestCPU: cfg.RequestCPU, UsageCPU: cfg.RequestCPU,
	})
	// Order within a tick: reconcile replicas, run the descheduler
	// cronjob, then schedule — an evicted pod rebinds the same minute
	// (to the other worker, because its grace-period reservation still
	// counts on the old one), giving the paper's square wave with
	// roughly two-minute residency.
	c.AddController(&DeploymentController{Every: 1})
	c.AddController(&Descheduler{Every: 2, Threshold: cfg.Threshold})
	c.AddController(&Scheduler{Every: 1})

	workerIndex := map[string]int{"worker1": 1, "worker2": 2, "worker3": 3}
	var series []PlacementSample
	for m := 0; m < cfg.Minutes; m++ {
		c.Step()
		w := 0
		for _, p := range c.PodsOf("app") {
			if p.Node != "" {
				w = workerIndex[p.Node]
			}
		}
		series = append(series, PlacementSample{Minute: c.Now, Worker: w})
	}
	return series, c
}

// Transitions counts how many times the placement changed between
// distinct workers (pending samples skipped) — the oscillation count.
func Transitions(series []PlacementSample) int {
	last, n := 0, 0
	for _, s := range series {
		if s.Worker == 0 {
			continue
		}
		if last != 0 && s.Worker != last {
			n++
		}
		last = s.Worker
	}
	return n
}

// TaintLoop runs the issue #75913 scenario: a deployment whose pods
// land on a tainted node (the scheduler ignores taints, standing in
// for the issue's node-selector misconfiguration), a taint manager
// evicting them, and a deployment controller recreating them. It
// returns the number of pod creations observed — a spinning loop
// creates one pod per reconciliation round.
func TaintLoop(minutes int) (int, *Cluster) {
	c := New()
	c.AddNode(&Node{Name: "tainted", Capacity: 100, Taints: map[string]bool{"dedicated": true}})
	c.AddDeployment(&Deployment{App: "web", Replicas: 1, RequestCPU: 10, UsageCPU: 10})
	c.AddController(&DeploymentController{Every: 1})
	c.AddController(&Scheduler{Every: 1, IgnoreTaints: true})
	c.AddController(&TaintManager{Every: 1})
	c.Run(minutes)
	creates := 0
	for _, e := range c.Events {
		if e.Action == "create" {
			creates++
		}
	}
	return creates, c
}

// HPARunaway runs the issue #90461 scenario: a rolling update with
// maxSurge=1 plus the defective HPA. It returns the deployment's
// replica spec over time; with the defect it ratchets upward.
func HPARunaway(minutes, maxReplicas int, buggy bool) ([]int, *Cluster) {
	c := New()
	for i := 1; i <= 4; i++ {
		c.AddNode(&Node{Name: fmt.Sprintf("node%d", i), Capacity: 100})
	}
	dep := &Deployment{App: "svc", Replicas: 2, RequestCPU: 5, UsageCPU: 5}
	c.AddDeployment(dep)
	c.AddController(&DeploymentController{Every: 1})
	c.AddController(&Scheduler{Every: 1})
	c.AddController(&RollingUpdateController{Every: 1, App: "svc", MaxSurge: 1})
	c.AddController(&HPA{Every: 1, App: "svc", Max: maxReplicas, ReportsExpectedAsCurrent: buggy})
	var series []int
	for m := 0; m < minutes; m++ {
		c.Step()
		series = append(series, dep.Replicas)
	}
	return series, c
}
