package sim

import "testing"

// TestFigure2Oscillation reproduces the paper's live experiment: the
// pod must bounce between worker 2 and worker 3, never settling, for
// the whole 30-minute run.
func TestFigure2Oscillation(t *testing.T) {
	series, _ := Figure2(Figure2Config{})
	if len(series) != 30 {
		t.Fatalf("series length %d, want 30", len(series))
	}
	workersSeen := map[int]bool{}
	for _, s := range series {
		if s.Worker == 1 {
			t.Errorf("minute %d: pod on worker 1, which is loaded beyond capacity", s.Minute)
		}
		workersSeen[s.Worker] = true
	}
	if !workersSeen[2] || !workersSeen[3] {
		t.Errorf("pod should visit both worker 2 and worker 3, saw %v", workersSeen)
	}
	if tr := Transitions(series); tr < 5 {
		t.Errorf("only %d placement transitions in 30 min; expected sustained oscillation", tr)
	}
}

// TestFigure2SafeThresholdStable: raising the eviction threshold to
// the pod's request stops the oscillation (the fix the verification
// models synthesize).
func TestFigure2SafeThresholdStable(t *testing.T) {
	series, _ := Figure2(Figure2Config{Threshold: 50})
	if tr := Transitions(series); tr != 0 {
		t.Errorf("threshold=50: %d transitions, want 0", tr)
	}
	// The pod must actually be running somewhere.
	if series[len(series)-1].Worker == 0 {
		t.Error("pod never scheduled")
	}
}

// TestFigure2Cadence: with the descheduler running every 2 minutes,
// placements flip at (roughly) that cadence — one eviction+rebind per
// descheduler round.
func TestFigure2Cadence(t *testing.T) {
	series, cluster := Figure2(Figure2Config{})
	evictions := 0
	for _, e := range cluster.Events {
		if e.Action == "evict" {
			evictions++
		}
	}
	// Descheduler ran 15 times over 30 min; most runs find the pod
	// over threshold (it may be pending during some runs).
	if evictions < 8 {
		t.Errorf("%d evictions over 30 min, want >= 8", evictions)
	}
	if tr := Transitions(series); tr < evictions/2 {
		t.Errorf("transitions (%d) should track evictions (%d)", tr, evictions)
	}
}

func TestTaintLoopChurns(t *testing.T) {
	creates, cluster := TaintLoop(20)
	if creates < 8 {
		t.Errorf("taint loop created %d pods in 20 min, expected sustained churn", creates)
	}
	evicts := 0
	for _, e := range cluster.Events {
		if e.Action == "delete" && e.Controller == "taint-manager" {
			evicts++
		}
	}
	if evicts < 8 {
		t.Errorf("taint manager removed %d pods, expected sustained churn", evicts)
	}
}

func TestHPARunawayRatchets(t *testing.T) {
	series, _ := HPARunaway(12, 10, true)
	if series[len(series)-1] != 10 {
		t.Errorf("buggy HPA: final replicas %d, want to hit the max 10", series[len(series)-1])
	}
	// Monotone non-decreasing ratchet.
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1] {
			t.Errorf("replicas decreased at minute %d: %v", i, series)
		}
	}
}

func TestHPARunawayFixedHPAStable(t *testing.T) {
	series, _ := HPARunaway(12, 10, false)
	for _, r := range series {
		if r != 2 {
			t.Fatalf("correct HPA: replicas %v, want constant 2", series)
		}
	}
}

func TestSchedulerFiltersCapacity(t *testing.T) {
	c := New()
	c.AddNode(&Node{Name: "small", Capacity: 100, BaseLoad: 90})
	c.AddNode(&Node{Name: "big", Capacity: 100})
	c.AddDeployment(&Deployment{App: "a", Replicas: 1, RequestCPU: 50, UsageCPU: 50})
	c.AddController(&DeploymentController{Every: 1})
	c.AddController(&Scheduler{Every: 1})
	c.Run(2)
	pods := c.PodsOf("a")
	if len(pods) != 1 || pods[0].Node != "big" {
		t.Errorf("pod should land on the big node, got %+v", pods)
	}
}

func TestSchedulerLeastRequested(t *testing.T) {
	c := New()
	c.AddNode(&Node{Name: "n1", Capacity: 100, BaseLoad: 30})
	c.AddNode(&Node{Name: "n2", Capacity: 100, BaseLoad: 10})
	c.AddDeployment(&Deployment{App: "a", Replicas: 1, RequestCPU: 20, UsageCPU: 20})
	c.AddController(&DeploymentController{Every: 1})
	c.AddController(&Scheduler{Every: 1})
	c.Run(2)
	if c.PodsOf("a")[0].Node != "n2" {
		t.Errorf("least-requested ranking should pick n2")
	}
}

func TestSchedulerRespectsTaints(t *testing.T) {
	c := New()
	c.AddNode(&Node{Name: "t", Capacity: 100, Taints: map[string]bool{"x": true}})
	c.AddDeployment(&Deployment{App: "a", Replicas: 1, RequestCPU: 10, UsageCPU: 10})
	c.AddController(&DeploymentController{Every: 1})
	c.AddController(&Scheduler{Every: 1})
	c.Run(3)
	if p := c.PodsOf("a")[0]; !p.Pending() {
		t.Errorf("pod bound to tainted node %s without toleration", p.Node)
	}
	// With a toleration it binds.
	c2 := New()
	c2.AddNode(&Node{Name: "t", Capacity: 100, Taints: map[string]bool{"x": true}})
	c2.AddDeployment(&Deployment{App: "a", Replicas: 1, RequestCPU: 10, UsageCPU: 10,
		Toleration: map[string]bool{"x": true}})
	c2.AddController(&DeploymentController{Every: 1})
	c2.AddController(&Scheduler{Every: 1})
	c2.Run(3)
	if p := c2.PodsOf("a")[0]; p.Pending() {
		t.Error("tolerating pod should bind to the tainted node")
	}
}

func TestDeschedulerRemoveDuplicates(t *testing.T) {
	c := New()
	c.AddNode(&Node{Name: "n1", Capacity: 100})
	c.AddDeployment(&Deployment{App: "a", Replicas: 2, RequestCPU: 10, UsageCPU: 10})
	c.AddController(&DeploymentController{Every: 1})
	c.AddController(&Scheduler{Every: 1})
	c.AddController(&Descheduler{Every: 1, Threshold: -1, RemoveDuplicates: true})
	c.Run(1)
	// Both replicas land on the single node; the descheduler must
	// evict exactly one duplicate.
	evicts := 0
	for _, e := range c.Events {
		if e.Action == "evict" {
			evicts++
		}
	}
	if evicts != 1 {
		t.Errorf("RemoveDuplicates evicted %d pods on first round, want 1", evicts)
	}
}

func TestDeploymentControllerScalesDown(t *testing.T) {
	c := New()
	c.AddNode(&Node{Name: "n1", Capacity: 100})
	dep := &Deployment{App: "a", Replicas: 3, RequestCPU: 5, UsageCPU: 5}
	c.AddDeployment(dep)
	c.AddController(&DeploymentController{Every: 1})
	c.AddController(&Scheduler{Every: 1})
	c.Run(2)
	if got := len(c.PodsOf("a")); got != 3 {
		t.Fatalf("replicas = %d, want 3", got)
	}
	dep.Replicas = 1
	c.Run(1)
	if got := len(c.PodsOf("a")); got != 1 {
		t.Errorf("after scale down: %d pods, want 1", got)
	}
}

func TestGracefulTerminationReservation(t *testing.T) {
	// After eviction the old node's requested capacity still counts
	// the pod for one tick, steering the scheduler elsewhere.
	c := New()
	n1 := &Node{Name: "n1", Capacity: 100}
	c.AddNode(n1)
	c.AddNode(&Node{Name: "n2", Capacity: 100})
	dep := &Deployment{App: "a", Replicas: 1, RequestCPU: 50, UsageCPU: 50}
	c.AddDeployment(dep)
	c.AddController(&DeploymentController{Every: 1})
	c.AddController(&Scheduler{Every: 1})
	c.Run(1)
	p := c.PodsOf("a")[0]
	first := p.Node
	c.Evict("test", p, "test")
	c.Run(1)
	if p.Node == first {
		t.Errorf("pod rebound to %s despite termination reservation", first)
	}
}

func TestEventLogFormat(t *testing.T) {
	_, cluster := Figure2(Figure2Config{Minutes: 4})
	if len(cluster.Events) == 0 {
		t.Fatal("no events recorded")
	}
	s := cluster.Events[0].String()
	if len(s) == 0 {
		t.Error("empty event string")
	}
}
