package sim

import "testing"

func serviceCluster(strategy string, rate int) (*Cluster, *LoadBalancer) {
	c := New()
	c.AddNode(&Node{Name: "n1", Capacity: 100})
	c.AddNode(&Node{Name: "n2", Capacity: 100})
	c.AddDeployment(&Deployment{App: "web", Replicas: 2, RequestCPU: 10, UsageCPU: 0})
	lb := &LoadBalancer{
		Every:    1,
		Strategy: strategy,
		Traffic:  []*ServiceTraffic{{App: "web", Rate: rate}},
	}
	c.AddController(&DeploymentController{Every: 1})
	c.AddController(&Scheduler{Every: 1})
	c.AddController(lb)
	return c, lb
}

func TestLoadBalancerRoundRobin(t *testing.T) {
	c, lb := serviceCluster("round-robin", 40)
	c.Run(2)
	total := 0
	for _, p := range c.PodsOf("web") {
		got := lb.Received[p.Name]
		if got != 20 {
			t.Errorf("pod %s received %d, want 20", p.Name, got)
		}
		if p.UsageCPU != 20 {
			t.Errorf("pod %s usage %d, want 20", p.Name, p.UsageCPU)
		}
		total += got
	}
	if total != 40 {
		t.Errorf("total routed %d, want 40", total)
	}
}

func TestLoadBalancerRemainderPlacement(t *testing.T) {
	c, lb := serviceCluster("least-loaded", 41)
	c.Run(2)
	shares := map[int]int{}
	for _, p := range c.PodsOf("web") {
		shares[lb.Received[p.Name]]++
	}
	if shares[20] != 1 || shares[21] != 1 {
		t.Errorf("shares = %v, want one 20 and one 21", shares)
	}
}

func TestLoadBalancerSkipsPendingPods(t *testing.T) {
	c := New()
	c.AddNode(&Node{Name: "n1", Capacity: 100})
	c.AddDeployment(&Deployment{App: "web", Replicas: 2, RequestCPU: 80, UsageCPU: 0})
	lb := &LoadBalancer{Every: 1, Traffic: []*ServiceTraffic{{App: "web", Rate: 30}}}
	c.AddController(&DeploymentController{Every: 1})
	c.AddController(&Scheduler{Every: 1})
	c.AddController(lb)
	c.Run(2)
	// Only one pod fits the node; the pending one gets nothing.
	bound, pending := 0, 0
	for _, p := range c.PodsOf("web") {
		if p.Pending() {
			pending++
			if lb.Received[p.Name] != 0 {
				t.Error("pending pod received traffic")
			}
		} else {
			bound++
			if lb.Received[p.Name] != 30 {
				t.Errorf("bound pod received %d, want all 30", lb.Received[p.Name])
			}
		}
	}
	if bound != 1 || pending != 1 {
		t.Fatalf("bound=%d pending=%d", bound, pending)
	}
}

func TestRateLimiterClips(t *testing.T) {
	c, lb := serviceCluster("round-robin", 100)
	rl := &RateLimiter{Every: 1, MaxRate: 30, Balancer: lb}
	c.AddController(rl)
	c.Run(1)
	for _, p := range c.PodsOf("web") {
		if !p.Pending() && lb.Received[p.Name] > 30 {
			t.Errorf("pod %s over the limit: %d", p.Name, lb.Received[p.Name])
		}
		if p.UsageCPU > 30 {
			t.Errorf("pod %s usage %d exceeds clipped rate", p.Name, p.UsageCPU)
		}
	}
	if rl.Dropped != 40 { // 2 pods × (50-30)
		t.Errorf("dropped %d, want 40", rl.Dropped)
	}
}

// TestTrafficDrivesDescheduler closes the cross-layer loop of the
// paper's Figure 1: request traffic (service layer) drives CPU usage,
// which triggers the descheduler (virtualization layer) to evict —
// even though the pod's *request* alone would be under threshold.
func TestTrafficDrivesDescheduler(t *testing.T) {
	c := New()
	c.AddNode(&Node{Name: "n1", Capacity: 100})
	c.AddNode(&Node{Name: "n2", Capacity: 100})
	c.AddDeployment(&Deployment{App: "web", Replicas: 1, RequestCPU: 10, UsageCPU: 0})
	lb := &LoadBalancer{Every: 1, Traffic: []*ServiceTraffic{{App: "web", Rate: 60}}}
	c.AddController(&DeploymentController{Every: 1})
	c.AddController(&Scheduler{Every: 1})
	c.AddController(lb)
	c.AddController(&Descheduler{Every: 1, Threshold: 50})
	c.Run(6)
	evicts := 0
	for _, e := range c.Events {
		if e.Action == "evict" {
			evicts++
		}
	}
	if evicts == 0 {
		t.Error("traffic-driven utilization never triggered the descheduler")
	}
	// With a rate limiter capping usage below the threshold, the
	// eviction loop stops.
	c2 := New()
	c2.AddNode(&Node{Name: "n1", Capacity: 100})
	c2.AddNode(&Node{Name: "n2", Capacity: 100})
	c2.AddDeployment(&Deployment{App: "web", Replicas: 1, RequestCPU: 10, UsageCPU: 0})
	lb2 := &LoadBalancer{Every: 1, Traffic: []*ServiceTraffic{{App: "web", Rate: 60}}}
	c2.AddController(&DeploymentController{Every: 1})
	c2.AddController(&Scheduler{Every: 1})
	c2.AddController(lb2)
	c2.AddController(&RateLimiter{Every: 1, MaxRate: 40, Balancer: lb2})
	c2.AddController(&Descheduler{Every: 1, Threshold: 50})
	c2.Run(6)
	for _, e := range c2.Events {
		if e.Action == "evict" {
			t.Error("rate-limited pod should stay under the eviction threshold")
		}
	}
}
