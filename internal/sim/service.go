package sim

import "fmt"

// Service-layer controllers (§2 of the paper): a load balancer
// distributing request traffic among an app's pods and a rate limiter
// capping what each pod receives. Pod CPU usage follows the received
// request rate, which is what couples these controllers to the
// scheduler/descheduler/HPA layer.

// ServiceTraffic models an app's incoming request rate (requests per
// minute). Register it on the cluster before the load balancer.
type ServiceTraffic struct {
	App  string
	Rate int
}

// LoadBalancer splits each registered service's traffic among the
// app's bound pods. Strategies:
//
//	"round-robin"  — equal shares
//	"least-loaded" — shares inversely follow current pod usage: the
//	                 least-used pod receives the remainder after an
//	                 equal base split (a simple latency-based policy)
//
// The received share drives each pod's UsageCPU at CPUPerRequest
// percent per request (so utilization-driven controllers react to
// traffic shifts, as in the paper's Figure 1 interaction graph).
type LoadBalancer struct {
	Every         int
	Strategy      string
	Traffic       []*ServiceTraffic
	CPUPerRequest int // percent CPU per request unit, default 1

	// Received records the last assignment per pod name.
	Received map[string]int
}

// Name implements Controller.
func (l *LoadBalancer) Name() string { return "load-balancer" }

// Period implements Controller.
func (l *LoadBalancer) Period() int { return max(1, l.Every) }

// Tick implements Controller.
func (l *LoadBalancer) Tick(c *Cluster) {
	if l.Received == nil {
		l.Received = make(map[string]int)
	}
	perReq := l.CPUPerRequest
	if perReq == 0 {
		perReq = 1
	}
	for _, t := range l.Traffic {
		var bound []*Pod
		for _, p := range c.PodsOf(t.App) {
			if !p.Pending() {
				bound = append(bound, p)
			}
		}
		if len(bound) == 0 {
			continue
		}
		base := t.Rate / len(bound)
		rem := t.Rate - base*len(bound)
		// The remainder goes to the least-used pod under
		// least-loaded, to the first pod under round-robin.
		target := bound[0]
		if l.Strategy == "least-loaded" {
			for _, p := range bound[1:] {
				if p.UsageCPU < target.UsageCPU {
					target = p
				}
			}
		}
		for _, p := range bound {
			share := base
			if p == target {
				share += rem
			}
			l.Received[p.Name] = share
			p.UsageCPU = share * perReq
		}
		c.Record(l.Name(), "route", "", "",
			fmt.Sprintf("app=%s rate=%d across %d pods (%s)", t.App, t.Rate, len(bound), l.strategy()))
	}
}

func (l *LoadBalancer) strategy() string {
	if l.Strategy == "" {
		return "round-robin"
	}
	return l.Strategy
}

// RateLimiter caps the request rate any single pod receives (the §2
// DDoS-mitigation control). It runs after the load balancer and clips
// both the recorded share and the driven CPU usage.
type RateLimiter struct {
	Every   int
	MaxRate int
	// Balancer is the LB whose assignments are clipped.
	Balancer *LoadBalancer
	// Dropped counts requests shed so far.
	Dropped int
}

// Name implements Controller.
func (r *RateLimiter) Name() string { return "rate-limiter" }

// Period implements Controller.
func (r *RateLimiter) Period() int { return max(1, r.Every) }

// Tick implements Controller.
func (r *RateLimiter) Tick(c *Cluster) {
	if r.Balancer == nil || r.Balancer.Received == nil {
		return
	}
	perReq := r.Balancer.CPUPerRequest
	if perReq == 0 {
		perReq = 1
	}
	for _, p := range c.sortedPods() {
		got, ok := r.Balancer.Received[p.Name]
		if !ok || got <= r.MaxRate {
			continue
		}
		r.Dropped += got - r.MaxRate
		r.Balancer.Received[p.Name] = r.MaxRate
		p.UsageCPU = r.MaxRate * perReq
		c.Record(r.Name(), "limit", p.Name, p.Node,
			fmt.Sprintf("clipped %d -> %d req/min", got, r.MaxRate))
	}
}
