// Package ts defines parametric transition systems — the common model
// form every verdict engine checks.
//
// A System has state variables, frozen parameters (configuration
// values or environment constants chosen once, at time zero), DEFINE
// macros, an initial-state constraint, a transition relation over
// current and next state, state invariants, and fairness constraints.
// This mirrors the modeling layer of the HotNets '20 paper: control
// components and their environment are modeled as one nondeterministic
// parametric transition system and checked symbolically.
package ts

import (
	"fmt"
	"sort"

	"verdict/internal/expr"
)

// System is a parametric transition system under construction or
// analysis. Build one with New and the Add*/Set* methods, then pass it
// to an engine in internal/mc.
type System struct {
	Name string

	vars    []*expr.Var
	params  []*expr.Var
	byName  map[string]*expr.Var
	defines map[string]*expr.Expr
	defOrd  []string

	inits    []*expr.Expr
	trans    []*expr.Expr
	invars   []*expr.Expr
	fairness []*expr.Expr

	assigned map[*expr.Var]bool // vars with a functional next-assignment
}

// New returns an empty system with the given name.
func New(name string) *System {
	return &System{
		Name:     name,
		byName:   make(map[string]*expr.Var),
		defines:  make(map[string]*expr.Expr),
		assigned: make(map[*expr.Var]bool),
	}
}

// --- Variable declaration ---

func (s *System) addVar(name string, t expr.Type, param bool) *expr.Var {
	if _, dup := s.byName[name]; dup {
		panic(fmt.Sprintf("ts: duplicate variable %q", name))
	}
	if _, dup := s.defines[name]; dup {
		panic(fmt.Sprintf("ts: variable %q collides with a DEFINE", name))
	}
	v := &expr.Var{Name: name, T: t, ID: len(s.vars) + len(s.params), Param: param}
	s.byName[name] = v
	if param {
		s.params = append(s.params, v)
	} else {
		s.vars = append(s.vars, v)
	}
	return v
}

// Bool declares a boolean state variable.
func (s *System) Bool(name string) *expr.Var { return s.addVar(name, expr.Bool(), false) }

// Int declares a bounded-integer state variable over [lo, hi].
func (s *System) Int(name string, lo, hi int64) *expr.Var {
	return s.addVar(name, expr.Int(lo, hi), false)
}

// Enum declares an enum state variable.
func (s *System) Enum(name string, values ...string) *expr.Var {
	return s.addVar(name, expr.Enum(values...), false)
}

// Real declares a real-valued state variable. Systems with real state
// are checkable only by the SMT engine.
func (s *System) Real(name string) *expr.Var { return s.addVar(name, expr.Real(), false) }

// BoolParam declares a boolean parameter (frozen variable).
func (s *System) BoolParam(name string) *expr.Var { return s.addVar(name, expr.Bool(), true) }

// IntParam declares a bounded-integer parameter over [lo, hi].
func (s *System) IntParam(name string, lo, hi int64) *expr.Var {
	return s.addVar(name, expr.Int(lo, hi), true)
}

// RealParam declares a real-valued parameter.
func (s *System) RealParam(name string) *expr.Var { return s.addVar(name, expr.Real(), true) }

// AdoptVars registers every variable and parameter of src, sharing
// the *expr.Var pointers. Engines use this to derive constrained
// variants of a system (e.g. pinning parameters during enumeration
// synthesis) without copying expression trees.
func (s *System) AdoptVars(src *System) {
	for _, v := range src.vars {
		if _, dup := s.byName[v.Name]; dup {
			panic(fmt.Sprintf("ts: AdoptVars duplicate %q", v.Name))
		}
		s.byName[v.Name] = v
		s.vars = append(s.vars, v)
	}
	for _, p := range src.params {
		if _, dup := s.byName[p.Name]; dup {
			panic(fmt.Sprintf("ts: AdoptVars duplicate %q", p.Name))
		}
		s.byName[p.Name] = p
		s.params = append(s.params, p)
	}
}

// Define registers a named macro. Macros are expanded structurally
// wherever used; they contribute no state.
func (s *System) Define(name string, e *expr.Expr) *expr.Expr {
	if _, dup := s.byName[name]; dup {
		panic(fmt.Sprintf("ts: DEFINE %q collides with a variable", name))
	}
	if _, dup := s.defines[name]; dup {
		panic(fmt.Sprintf("ts: duplicate DEFINE %q", name))
	}
	s.defines[name] = e
	s.defOrd = append(s.defOrd, name)
	return e
}

// --- Constraints ---

// AddInit conjoins a constraint on initial states. It must not mention
// next-state variables.
func (s *System) AddInit(e *expr.Expr) {
	s.mustBool("INIT", e)
	if expr.HasNext(e) {
		panic("ts: INIT constraint mentions next()")
	}
	s.inits = append(s.inits, e)
}

// AddTrans conjoins a constraint on transitions (may mention both
// current- and next-state variables).
func (s *System) AddTrans(e *expr.Expr) {
	s.mustBool("TRANS", e)
	s.trans = append(s.trans, e)
}

// AddInvar conjoins a state invariant, restricting every reachable
// state (initial and successor alike).
func (s *System) AddInvar(e *expr.Expr) {
	s.mustBool("INVAR", e)
	if expr.HasNext(e) {
		panic("ts: INVAR constraint mentions next()")
	}
	s.invars = append(s.invars, e)
}

// AddFairness adds a justice constraint: the condition must hold
// infinitely often along any fair execution. Liveness checking
// restricts attention to fair executions.
func (s *System) AddFairness(e *expr.Expr) {
	s.mustBool("FAIRNESS", e)
	if expr.HasNext(e) {
		panic("ts: FAIRNESS constraint mentions next()")
	}
	s.fairness = append(s.fairness, e)
}

// Assign constrains next(v) = e, the functional-assignment style most
// controller models use. Equivalent to AddTrans(Eq(v.Next(), e)) but
// also recorded so engines know v is deterministic given the
// surrounding state.
func (s *System) Assign(v *expr.Var, e *expr.Expr) {
	if v.Param {
		panic(fmt.Sprintf("ts: Assign to parameter %s", v.Name))
	}
	if s.assigned[v] {
		panic(fmt.Sprintf("ts: duplicate Assign to %s", v.Name))
	}
	s.assigned[v] = true
	s.trans = append(s.trans, expr.Eq(v.Next(), e))
}

// Keep constrains v to hold its value across every transition.
func (s *System) Keep(v *expr.Var) { s.Assign(v, v.Ref()) }

// Init constrains v's initial value.
func (s *System) Init(v *expr.Var, val *expr.Expr) {
	s.AddInit(expr.Eq(v.Ref(), val))
}

func (s *System) mustBool(where string, e *expr.Expr) {
	if e.Type().Kind != expr.KindBool {
		panic(fmt.Sprintf("ts: %s constraint has type %s, want bool", where, e.Type()))
	}
}

// --- Accessors ---

// Vars returns the state variables in declaration order.
func (s *System) Vars() []*expr.Var { return s.vars }

// Params returns the parameters in declaration order.
func (s *System) Params() []*expr.Var { return s.params }

// AllVars returns state variables followed by parameters.
func (s *System) AllVars() []*expr.Var {
	out := make([]*expr.Var, 0, len(s.vars)+len(s.params))
	out = append(out, s.vars...)
	out = append(out, s.params...)
	return out
}

// VarByName looks a variable or parameter up by name.
func (s *System) VarByName(name string) (*expr.Var, bool) {
	v, ok := s.byName[name]
	return v, ok
}

// DefineByName looks a macro up by name.
func (s *System) DefineByName(name string) (*expr.Expr, bool) {
	e, ok := s.defines[name]
	return e, ok
}

// DefineNames returns macro names in declaration order.
func (s *System) DefineNames() []string { return s.defOrd }

// InitExpr returns the conjunction of all INIT constraints and
// invariants' initial instances.
func (s *System) InitExpr() *expr.Expr { return expr.And(s.inits...) }

// TransExpr returns the conjunction of all TRANS constraints. The
// frozen semantics of parameters (next(p) = p) is enforced by the
// engines, not included here.
func (s *System) TransExpr() *expr.Expr { return expr.And(s.trans...) }

// InvarExpr returns the conjunction of all INVAR constraints.
func (s *System) InvarExpr() *expr.Expr { return expr.And(s.invars...) }

// Fairness returns the justice constraints.
func (s *System) Fairness() []*expr.Expr { return s.fairness }

// Assigned reports whether v has a functional Assign.
func (s *System) Assigned(v *expr.Var) bool { return s.assigned[v] }

// Finite reports whether all variables and constraints range over
// finite domains, making the system checkable by the SAT/BDD engines.
func (s *System) Finite() bool {
	for _, v := range s.AllVars() {
		if !v.T.Finite() {
			return false
		}
	}
	for _, e := range s.everyExpr() {
		if !expr.IsFinite(e) {
			return false
		}
	}
	return true
}

func (s *System) everyExpr() []*expr.Expr {
	var out []*expr.Expr
	out = append(out, s.inits...)
	out = append(out, s.trans...)
	out = append(out, s.invars...)
	out = append(out, s.fairness...)
	for _, n := range s.defOrd {
		out = append(out, s.defines[n])
	}
	return out
}

// Validate checks structural well-formedness: every variable
// referenced by a constraint is declared in this system, and no
// parameter appears under next() in TRANS (parameters are frozen; the
// engines add next(p) = p themselves, and an explicit next(p) in a
// model almost always indicates a modeling mistake).
func (s *System) Validate() error {
	known := make(map[*expr.Var]bool, len(s.byName))
	for _, v := range s.byName {
		known[v] = true
	}
	for _, e := range s.everyExpr() {
		for _, v := range expr.Vars(e) {
			if !known[v] {
				return fmt.Errorf("ts %s: constraint references foreign variable %q", s.Name, v.Name)
			}
		}
		var bad *expr.Var
		expr.Walk(e, func(n *expr.Expr) bool {
			if n.Op == expr.OpNext && n.V.Param {
				bad = n.V
			}
			return bad == nil
		})
		if bad != nil {
			return fmt.Errorf("ts %s: next(%s) on parameter (parameters are frozen)", s.Name, bad.Name)
		}
	}
	return nil
}

// StateSpaceSize returns the product of all finite variable domain
// sizes (state vars and parameters), or 0 if any domain is infinite or
// the product overflows.
func (s *System) StateSpaceSize() int64 {
	size := int64(1)
	for _, v := range s.AllVars() {
		n := v.T.Size()
		if n == 0 {
			return 0
		}
		if size > (1<<62)/n {
			return 0
		}
		size *= n
	}
	return size
}

// SortedVarNames returns all variable and parameter names, sorted —
// convenient for deterministic printing.
func (s *System) SortedVarNames() []string {
	names := make([]string, 0, len(s.byName))
	for n := range s.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
