package ts

import (
	"strings"
	"testing"

	"verdict/internal/expr"
)

func TestDeclarationAndLookup(t *testing.T) {
	s := New("m")
	x := s.Int("x", 0, 7)
	b := s.Bool("b")
	e := s.Enum("e", "a", "c")
	r := s.Real("r")
	p := s.IntParam("p", 1, 4)

	if len(s.Vars()) != 4 || len(s.Params()) != 1 || len(s.AllVars()) != 5 {
		t.Fatalf("var counts wrong: %d/%d", len(s.Vars()), len(s.Params()))
	}
	for _, v := range []*expr.Var{x, b, e, r, p} {
		got, ok := s.VarByName(v.Name)
		if !ok || got != v {
			t.Errorf("lookup %s failed", v.Name)
		}
	}
	if !p.Param || x.Param {
		t.Error("Param flags wrong")
	}
}

func TestDuplicatePanics(t *testing.T) {
	s := New("m")
	s.Bool("x")
	assertPanics(t, func() { s.Int("x", 0, 1) }, "duplicate var")
	s.Define("d", expr.True())
	assertPanics(t, func() { s.Bool("d") }, "var colliding with define")
	assertPanics(t, func() { s.Define("d", expr.False()) }, "duplicate define")
	assertPanics(t, func() { s.Define("x", expr.True()) }, "define colliding with var")
}

func TestConstraintValidation(t *testing.T) {
	s := New("m")
	x := s.Int("x", 0, 3)
	assertPanics(t, func() { s.AddInit(expr.Eq(x.Next(), expr.IntConst(0))) }, "INIT with next")
	assertPanics(t, func() { s.AddInvar(expr.Eq(x.Next(), x.Ref())) }, "INVAR with next")
	assertPanics(t, func() { s.AddFairness(expr.Eq(x.Next(), x.Ref())) }, "FAIRNESS with next")
	assertPanics(t, func() { s.AddTrans(expr.Add(x.Ref(), x.Ref())) }, "non-bool TRANS")
}

func TestAssignSemantics(t *testing.T) {
	s := New("m")
	x := s.Int("x", 0, 3)
	p := s.IntParam("p", 0, 1)
	s.Assign(x, expr.IntConst(1))
	if !s.Assigned(x) {
		t.Error("Assigned not recorded")
	}
	assertPanics(t, func() { s.Assign(x, expr.IntConst(2)) }, "duplicate Assign")
	assertPanics(t, func() { s.Assign(p, expr.IntConst(1)) }, "Assign to param")

	s2 := New("m2")
	y := s2.Int("y", 0, 3)
	s2.Keep(y)
	tr := s2.TransExpr()
	cur := expr.MapEnv{y: expr.IntValue(2)}
	same := expr.MapEnv{y: expr.IntValue(2)}
	diff := expr.MapEnv{y: expr.IntValue(3)}
	if ok, _ := expr.EvalBool(tr, cur, same); !ok {
		t.Error("Keep rejects identical successor")
	}
	if ok, _ := expr.EvalBool(tr, cur, diff); ok {
		t.Error("Keep accepts changed successor")
	}
}

func TestValidateForeignVar(t *testing.T) {
	s1 := New("a")
	x := s1.Int("x", 0, 3)
	s2 := New("b")
	s2.Int("y", 0, 3)
	s2.AddTrans(expr.Eq(x.Ref(), expr.IntConst(1))) // references s1's var
	if err := s2.Validate(); err == nil || !strings.Contains(err.Error(), "foreign") {
		t.Errorf("Validate = %v, want foreign-variable error", err)
	}
}

func TestValidateNextOnParam(t *testing.T) {
	s := New("m")
	p := s.IntParam("p", 0, 3)
	s.Int("x", 0, 3)
	s.AddTrans(expr.Eq(p.Next(), p.Ref()))
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "frozen") {
		t.Errorf("Validate = %v, want frozen-parameter error", err)
	}
}

func TestStateSpaceSize(t *testing.T) {
	s := New("m")
	s.Int("x", 0, 7)           // 8
	s.Bool("b")                // 2
	s.Enum("e", "a", "b", "c") // 3
	if got := s.StateSpaceSize(); got != 48 {
		t.Errorf("StateSpaceSize = %d, want 48", got)
	}
	s.Real("r")
	if got := s.StateSpaceSize(); got != 0 {
		t.Errorf("with real var: %d, want 0", got)
	}
}

func TestFinite(t *testing.T) {
	s := New("m")
	s.Int("x", 0, 3)
	if !s.Finite() {
		t.Error("finite system reported infinite")
	}
	s.RealParam("t")
	if s.Finite() {
		t.Error("system with real param reported finite")
	}
}

func TestAdoptVars(t *testing.T) {
	s1 := New("a")
	x := s1.Int("x", 0, 3)
	p := s1.IntParam("p", 0, 1)
	s1.AddInit(expr.Eq(x.Ref(), expr.IntConst(0)))

	s2 := New("b")
	s2.AdoptVars(s1)
	got, ok := s2.VarByName("x")
	if !ok || got != x {
		t.Fatal("adopted var not shared")
	}
	if gotP, _ := s2.VarByName("p"); gotP != p {
		t.Fatal("adopted param not shared")
	}
	s2.AddTrans(expr.Eq(x.Next(), x.Ref()))
	if err := s2.Validate(); err != nil {
		t.Fatalf("adopted system invalid: %v", err)
	}
	assertPanics(t, func() { s2.AdoptVars(s1) }, "double adoption")
}

func TestDefinesOrder(t *testing.T) {
	s := New("m")
	s.Define("b", expr.True())
	s.Define("a", expr.False())
	names := s.DefineNames()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Errorf("DefineNames = %v, want declaration order", names)
	}
	if d, ok := s.DefineByName("a"); !ok || !d.IsFalse() {
		t.Error("DefineByName broken")
	}
}

func TestSortedVarNames(t *testing.T) {
	s := New("m")
	s.Bool("zeta")
	s.Bool("alpha")
	names := s.SortedVarNames()
	if names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("SortedVarNames = %v", names)
	}
}

func TestInitHelper(t *testing.T) {
	s := New("m")
	x := s.Int("x", 0, 3)
	s.Init(x, expr.IntConst(2))
	ok, err := expr.EvalBool(s.InitExpr(), expr.MapEnv{x: expr.IntValue(2)}, nil)
	if err != nil || !ok {
		t.Error("Init helper broken")
	}
	ok, _ = expr.EvalBool(s.InitExpr(), expr.MapEnv{x: expr.IntValue(1)}, nil)
	if ok {
		t.Error("Init accepts wrong value")
	}
}

func assertPanics(t *testing.T, f func(), what string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	f()
}
