package trace

import (
	"encoding/json"
	"fmt"

	"verdict/internal/expr"
)

// wireTrace is the stable JSON shape of a Trace, served by verdictd's
// GET /v1/checks/{id}/trace. States are plain name→value objects
// (expr.Value handles the tagged value encoding); loop_start is -1
// for a finite prefix, matching the in-memory convention.
type wireTrace struct {
	States    []map[string]expr.Value `json:"states"`
	LoopStart int                     `json:"loop_start"`
	Params    map[string]expr.Value   `json:"params,omitempty"`
}

// MarshalJSON renders the trace in its wire shape.
func (t *Trace) MarshalJSON() ([]byte, error) {
	w := wireTrace{
		States:    make([]map[string]expr.Value, len(t.States)),
		LoopStart: t.LoopStart,
	}
	for i, s := range t.States {
		w.States[i] = s.Values
	}
	if len(t.Params) > 0 {
		w.Params = t.Params
	}
	return json.Marshal(w)
}

// UnmarshalJSON is the inverse of MarshalJSON. A missing loop_start
// defaults to -1 (finite prefix).
func (t *Trace) UnmarshalJSON(data []byte) error {
	w := wireTrace{LoopStart: -1}
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.LoopStart < -1 || w.LoopStart >= len(w.States) {
		return fmt.Errorf("trace: loop_start %d out of range for %d states", w.LoopStart, len(w.States))
	}
	t.States = make([]State, len(w.States))
	for i, vals := range w.States {
		if vals == nil {
			vals = make(map[string]expr.Value)
		}
		t.States[i] = State{Values: vals}
	}
	t.LoopStart = w.LoopStart
	t.Params = w.Params
	if t.Params == nil {
		t.Params = make(map[string]expr.Value)
	}
	return nil
}
