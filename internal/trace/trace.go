// Package trace represents counterexample executions produced by the
// model-checking engines: a sequence of states, an optional loop-back
// position for lasso-shaped liveness counterexamples, and the
// synthesized parameter values.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"verdict/internal/expr"
)

// State is one step of an execution: a total assignment of the state
// variables.
type State struct {
	Values map[string]expr.Value
}

// NewState returns an empty state.
func NewState() State { return State{Values: make(map[string]expr.Value)} }

// Get returns the value of a variable by name.
func (s State) Get(name string) (expr.Value, bool) {
	v, ok := s.Values[name]
	return v, ok
}

// Trace is a finite or lasso-shaped execution.
type Trace struct {
	// States holds the path s_0 .. s_k.
	States []State
	// LoopStart is the index the path loops back to after s_k, or -1
	// for a plain finite prefix.
	LoopStart int
	// Params holds synthesized parameter values (frozen variables).
	Params map[string]expr.Value
}

// New returns an empty trace with no loop.
func New() *Trace {
	return &Trace{LoopStart: -1, Params: make(map[string]expr.Value)}
}

// IsLasso reports whether the trace loops.
func (t *Trace) IsLasso() bool { return t.LoopStart >= 0 }

// Clone returns a deep copy: mutating the copy's states or parameters
// leaves the original untouched.
func (t *Trace) Clone() *Trace {
	if t == nil {
		return nil
	}
	cp := &Trace{LoopStart: t.LoopStart, Params: make(map[string]expr.Value, len(t.Params))}
	for k, v := range t.Params {
		cp.Params[k] = v
	}
	cp.States = make([]State, len(t.States))
	for i, s := range t.States {
		ns := NewState()
		for k, v := range s.Values {
			ns.Values[k] = v
		}
		cp.States[i] = ns
	}
	return cp
}

// Len returns the number of states.
func (t *Trace) Len() int { return len(t.States) }

// String renders the trace in a NuXMV-like style: parameters first,
// then each state showing only the variables that changed since the
// previous state (all variables for state 0).
func (t *Trace) String() string {
	var b strings.Builder
	if len(t.Params) > 0 {
		b.WriteString("Parameters:\n")
		for _, k := range sortedKeys(t.Params) {
			fmt.Fprintf(&b, "  %s = %s\n", k, t.Params[k])
		}
	}
	var prev map[string]expr.Value
	for i, s := range t.States {
		marker := ""
		if i == t.LoopStart {
			marker = "  -- loop starts here"
		}
		fmt.Fprintf(&b, "State %d%s\n", i, marker)
		for _, k := range sortedKeys(s.Values) {
			v := s.Values[k]
			if prev != nil {
				if pv, ok := prev[k]; ok && pv.Equal(v) {
					continue
				}
			}
			fmt.Fprintf(&b, "  %s = %s\n", k, v)
		}
		prev = s.Values
	}
	if t.IsLasso() {
		fmt.Fprintf(&b, "-- loop back to state %d\n", t.LoopStart)
	}
	return b.String()
}

// Full renders every variable in every state (no change-compression).
func (t *Trace) Full() string {
	var b strings.Builder
	if len(t.Params) > 0 {
		b.WriteString("Parameters:\n")
		for _, k := range sortedKeys(t.Params) {
			fmt.Fprintf(&b, "  %s = %s\n", k, t.Params[k])
		}
	}
	for i, s := range t.States {
		marker := ""
		if i == t.LoopStart {
			marker = "  -- loop starts here"
		}
		fmt.Fprintf(&b, "State %d%s\n", i, marker)
		for _, k := range sortedKeys(s.Values) {
			fmt.Fprintf(&b, "  %s = %s\n", k, s.Values[k])
		}
	}
	if t.IsLasso() {
		fmt.Fprintf(&b, "-- loop back to state %d\n", t.LoopStart)
	}
	return b.String()
}

func sortedKeys(m map[string]expr.Value) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
