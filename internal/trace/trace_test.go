package trace

import (
	"strings"
	"testing"

	"verdict/internal/expr"
)

func sample() *Trace {
	t := New()
	t.Params["p"] = expr.IntValue(2)
	s0 := NewState()
	s0.Values["x"] = expr.IntValue(0)
	s0.Values["mode"] = expr.EnumValue("idle")
	s1 := NewState()
	s1.Values["x"] = expr.IntValue(1)
	s1.Values["mode"] = expr.EnumValue("idle") // unchanged
	t.States = append(t.States, s0, s1)
	return t
}

func TestChangeCompression(t *testing.T) {
	tr := sample()
	s := tr.String()
	// State 0 shows everything; state 1 shows only x (mode unchanged).
	if !strings.Contains(s, "mode = idle") {
		t.Error("state 0 missing mode")
	}
	if strings.Count(s, "mode = idle") != 1 {
		t.Errorf("unchanged variable repeated:\n%s", s)
	}
	if strings.Count(s, "x = ") != 2 {
		t.Errorf("changed variable not shown twice:\n%s", s)
	}
	if !strings.Contains(s, "p = 2") {
		t.Error("parameters missing")
	}
}

func TestFullRendering(t *testing.T) {
	tr := sample()
	s := tr.Full()
	if strings.Count(s, "mode = idle") != 2 {
		t.Errorf("Full should repeat unchanged variables:\n%s", s)
	}
}

func TestLassoMarkers(t *testing.T) {
	tr := sample()
	tr.LoopStart = 1
	if !tr.IsLasso() {
		t.Fatal("IsLasso false")
	}
	s := tr.String()
	if !strings.Contains(s, "loop starts here") || !strings.Contains(s, "loop back to state 1") {
		t.Errorf("lasso markers missing:\n%s", s)
	}
}

func TestNoLoop(t *testing.T) {
	tr := sample()
	if tr.IsLasso() {
		t.Error("fresh trace should not be a lasso")
	}
	if strings.Contains(tr.String(), "loop") {
		t.Error("no-loop trace mentions loop")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestGet(t *testing.T) {
	tr := sample()
	v, ok := tr.States[0].Get("x")
	if !ok || v.I != 0 {
		t.Error("Get broken")
	}
	if _, ok := tr.States[0].Get("zzz"); ok {
		t.Error("Get found missing key")
	}
}

func TestDeterministicOrdering(t *testing.T) {
	tr := sample()
	if tr.String() != tr.String() {
		t.Error("rendering not deterministic")
	}
	// Keys print sorted.
	s := tr.Full()
	if strings.Index(s, "mode") > strings.Index(s, "x = 0") {
		t.Error("keys not sorted")
	}
}
