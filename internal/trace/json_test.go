package trace

import (
	"encoding/json"
	"math/big"
	"strings"
	"testing"

	"verdict/internal/expr"
)

func sampleTrace() *Trace {
	t := New()
	t.Params["minReplicas"] = expr.IntValue(1)
	t.Params["rate"] = expr.RealValue(big.NewRat(1, 2))
	s0 := NewState()
	s0.Values["replicas"] = expr.IntValue(2)
	s0.Values["rolling"] = expr.BoolValue(false)
	s0.Values["phase"] = expr.EnumValue("steady")
	s1 := NewState()
	s1.Values["replicas"] = expr.IntValue(1)
	s1.Values["rolling"] = expr.BoolValue(true)
	s1.Values["phase"] = expr.EnumValue("rolling")
	t.States = []State{s0, s1}
	t.LoopStart = 1
	return t
}

func TestTraceJSONRoundTrip(t *testing.T) {
	orig := sampleTrace()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	if back.LoopStart != orig.LoopStart || back.Len() != orig.Len() {
		t.Fatalf("shape changed: %d states loop %d, want %d loop %d",
			back.Len(), back.LoopStart, orig.Len(), orig.LoopStart)
	}
	// The pretty printers walk every value, so equal renderings mean
	// equal traces.
	if back.Full() != orig.Full() {
		t.Errorf("round trip changed the trace:\n%s\n---\n%s", orig.Full(), back.Full())
	}
}

func TestTraceJSONFieldNames(t *testing.T) {
	data, err := json.Marshal(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"states"`, `"loop_start":1`, `"params"`, `"kind":"real"`} {
		if !strings.Contains(string(data), field) {
			t.Errorf("wire trace missing %s: %s", field, data)
		}
	}
}

func TestTraceJSONDefaultsAndValidation(t *testing.T) {
	var noLoop Trace
	if err := json.Unmarshal([]byte(`{"states":[{}]}`), &noLoop); err != nil {
		t.Fatal(err)
	}
	if noLoop.LoopStart != -1 {
		t.Errorf("missing loop_start decoded to %d, want -1", noLoop.LoopStart)
	}
	if noLoop.IsLasso() {
		t.Error("finite prefix decoded as lasso")
	}
	var bad Trace
	if err := json.Unmarshal([]byte(`{"states":[{}],"loop_start":5}`), &bad); err == nil {
		t.Error("out-of-range loop_start accepted")
	}
}
