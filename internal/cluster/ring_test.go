package cluster

import (
	"fmt"
	"testing"
)

func testNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

// TestRingDeterminism: ownership is a pure function of membership —
// two rings built from the same members (in any order, any URL
// formatting) agree on every key. This is what lets servers and the
// node-aware client route independently yet identically.
func TestRingDeterminism(t *testing.T) {
	a := NewRing([]string{"http://b:1", "http://a:1/", " http://c:1 "}, 0)
	b := NewRing([]string{"http://c:1", "http://b:1/", "http://a:1"}, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("%064x", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %s: owners diverge (%s vs %s)", key, a.Owner(key), b.Owner(key))
		}
	}
	if got := a.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3 (normalization must deduplicate)", got)
	}
}

// TestRingDistribution: virtual nodes keep the split roughly even —
// no member of a 5-node ring owns more than ~2x its fair share over a
// large key sample.
func TestRingDistribution(t *testing.T) {
	r := NewRing(testNodes(5), 0)
	counts := make(map[string]int)
	const keys = 5000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	fair := keys / 5
	for node, got := range counts {
		if got > 2*fair || got < fair/3 {
			t.Errorf("node %s owns %d of %d keys (fair share %d): distribution too skewed", node, got, keys, fair)
		}
	}
	if len(counts) != 5 {
		t.Errorf("only %d of 5 nodes own keys", len(counts))
	}
}

// TestRingMinimalMovement: removing one of N nodes must relocate only
// the keys that node owned (~1/N) — everything else stays put. This
// is the property that makes health-driven ring changes cheap.
func TestRingMinimalMovement(t *testing.T) {
	nodes := testNodes(5)
	full := NewRing(nodes, 0)
	smaller := NewRing(nodes[:4], 0)
	removed := nodes[4]
	const keys = 2000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, after := full.Owner(key), smaller.Owner(key)
		if before == after {
			continue
		}
		if Normalize(before) != Normalize(removed) {
			t.Fatalf("key %s moved from surviving node %s to %s", key, before, after)
		}
		moved++
	}
	if moved == 0 || moved > keys/2 {
		t.Errorf("%d of %d keys moved after removing 1 of 5 nodes; want ~%d", moved, keys, keys/5)
	}
}

// TestRingSuccessors: replica sets are distinct nodes in ring order,
// led by the owner, and clamp to the member count.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(testNodes(3), 0)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		succ := r.Successors(key, 2)
		if len(succ) != 2 {
			t.Fatalf("key %s: %d successors, want 2", key, len(succ))
		}
		if succ[0] != r.Owner(key) {
			t.Fatalf("key %s: successor list %v does not start at owner %s", key, succ, r.Owner(key))
		}
		if succ[0] == succ[1] {
			t.Fatalf("key %s: duplicate successor %v", key, succ)
		}
		if all := r.Successors(key, 10); len(all) != 3 {
			t.Fatalf("key %s: over-asking returned %d nodes, want all 3", key, len(all))
		}
	}
}

// TestRingEmpty: a ring with no members answers without panicking.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Owner("k"); got != "" {
		t.Errorf("empty ring owner = %q", got)
	}
	if got := r.Successors("k", 2); got != nil {
		t.Errorf("empty ring successors = %v", got)
	}
}
