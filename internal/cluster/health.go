package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// State is a peer's failure-detector verdict.
type State int

const (
	// Alive: the last probe succeeded.
	Alive State = iota
	// Suspect: recent probes failed, but not enough of them to write
	// the peer off. Suspect peers keep receiving replication traffic
	// (they may just be slow) but stop being preferred for routing.
	Suspect
	// Dead: DeadAfter consecutive probes failed. The ring routes
	// around dead peers and their shadowed work is promoted.
	Dead
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	default:
		return "dead"
	}
}

// ProbeFunc checks one peer, returning nil when it is healthy. The
// default implementation GETs the peer's /healthz; tests substitute
// fakes.
type ProbeFunc func(ctx context.Context, node string) error

// TrackerOptions tunes the failure detector. Zero values get
// defaults chosen for LAN-scale fleets.
type TrackerOptions struct {
	// Interval between probe rounds (default 500ms).
	Interval time.Duration
	// Timeout for one probe (default 1s).
	Timeout time.Duration
	// DeadAfter is the number of consecutive failures that declare a
	// peer dead (default 3). Failures below it mark the peer suspect.
	DeadAfter int
	// Probe overrides the health check (tests).
	Probe ProbeFunc
	// OnChange, when set, is invoked (outside the tracker's lock, from
	// the probe goroutine) every time a peer's state changes.
	OnChange func(node string, s State)
}

func (o TrackerOptions) withDefaults() TrackerOptions {
	if o.Interval <= 0 {
		o.Interval = 500 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = time.Second
	}
	if o.DeadAfter <= 0 {
		o.DeadAfter = 3
	}
	if o.Probe == nil {
		o.Probe = httpProbe
	}
	return o
}

// httpProbe is the production probe: GET <node>/healthz, any HTTP 200
// counts as alive. A degraded daemon (durability lost, still serving)
// answers 200 with a "degraded" body — degraded is not dead, and
// routing away from it would amplify a disk failure into an outage.
func httpProbe(ctx context.Context, node string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// Tracker probes a fixed peer set periodically and keeps a
// failure-detector state per peer. Start launches the probe loop;
// Stop halts it.
type Tracker struct {
	peers []string
	opts  TrackerOptions

	mu sync.Mutex
	st map[string]*peerState

	stop chan struct{}
	wg   sync.WaitGroup
}

type peerState struct {
	state    State
	failures int // consecutive probe failures
}

// NewTracker builds a tracker over the normalized peer list (the
// local node must not be in it). Peers start Alive — a fleet booting
// in any order must not route around peers it has simply not probed
// yet.
func NewTracker(peers []string, opts TrackerOptions) *Tracker {
	t := &Tracker{opts: opts.withDefaults(), st: make(map[string]*peerState), stop: make(chan struct{})}
	for _, p := range peers {
		p = Normalize(p)
		if p == "" {
			continue
		}
		if _, dup := t.st[p]; dup {
			continue
		}
		t.peers = append(t.peers, p)
		t.st[p] = &peerState{state: Alive}
	}
	return t
}

// Start launches the probe loop. Probes run concurrently per peer so
// one wedged peer cannot delay detecting another.
func (t *Tracker) Start() {
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		ticker := time.NewTicker(t.opts.Interval)
		defer ticker.Stop()
		for {
			t.probeAll()
			select {
			case <-t.stop:
				return
			case <-ticker.C:
			}
		}
	}()
}

// Stop halts the probe loop and waits for in-flight probes.
func (t *Tracker) Stop() {
	close(t.stop)
	t.wg.Wait()
}

func (t *Tracker) probeAll() {
	var wg sync.WaitGroup
	for _, p := range t.peers {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), t.opts.Timeout)
			defer cancel()
			t.record(node, t.opts.Probe(ctx, node))
		}(p)
	}
	wg.Wait()
}

// record folds one probe outcome into the peer's state, firing
// OnChange on transitions.
func (t *Tracker) record(node string, err error) {
	t.mu.Lock()
	ps, ok := t.st[node]
	if !ok {
		t.mu.Unlock()
		return
	}
	prev := ps.state
	if err == nil {
		ps.failures = 0
		ps.state = Alive
	} else {
		ps.failures++
		if ps.failures >= t.opts.DeadAfter {
			ps.state = Dead
		} else {
			ps.state = Suspect
		}
	}
	next := ps.state
	t.mu.Unlock()
	if next != prev && t.opts.OnChange != nil {
		t.opts.OnChange(node, next)
	}
}

// State reports a peer's current verdict; unknown nodes are Dead (a
// node outside the member list can never take traffic).
func (t *Tracker) State(node string) State {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ps, ok := t.st[Normalize(node)]; ok {
		return ps.state
	}
	return Dead
}

// AliveCount returns how many peers currently pass probes (Alive
// only — suspects are in transition and not counted healthy).
func (t *Tracker) AliveCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, ps := range t.st {
		if ps.state == Alive {
			n++
		}
	}
	return n
}
