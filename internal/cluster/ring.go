// Package cluster turns a set of verdictd nodes into a fleet: a
// consistent-hash ring routes jobs by their content address, a
// failure detector tracks which peers are alive, and the Cluster type
// combines both into the routing questions the serving layer asks —
// who owns this key, who replicates it, and who is healthy enough to
// take traffic right now.
//
// The ring hashes node identities (their advertised base URLs) onto a
// 64-bit circle through a fixed number of virtual nodes, so ownership
// moves minimally when membership changes: removing one of N nodes
// relocates ~1/N of the keyspace and nothing else. Keys are the same
// hex content addresses verdictd already uses for cache dedup, which
// is what makes the cache a cluster-wide property — every node routes
// an identical submission to the same owner, where the existing
// singleflight and LRU collapse it.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// DefaultVirtualNodes is the number of points each node contributes
// to the ring. 64 keeps the keyspace split within a few percent of
// even for small fleets while the ring stays tiny (N×64 entries).
const DefaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring over a set of node
// identities. Build one with NewRing; lookups are safe for concurrent
// use.
type Ring struct {
	nodes  []string
	vnodes []vnode // sorted by hash
}

type vnode struct {
	hash uint64
	node string
}

// hash64 maps a string onto the ring circle. SHA-256 (truncated) is
// already in the trust base for content addressing; reusing it keeps
// placement independent of Go's runtime hash and identical across
// nodes and client versions.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Normalize canonicalizes a node identity so "http://a:1/" and
// "http://a:1" hash identically on every member.
func Normalize(node string) string {
	return strings.TrimRight(strings.TrimSpace(node), "/")
}

// NewRing builds a ring over the given node identities (normalized,
// deduplicated). virtual <= 0 uses DefaultVirtualNodes.
func NewRing(nodes []string, virtual int) *Ring {
	if virtual <= 0 {
		virtual = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		n = Normalize(n)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
	}
	sort.Strings(r.nodes)
	for _, n := range r.nodes {
		for i := 0; i < virtual; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: hash64(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.vnodes, func(a, b int) bool {
		if r.vnodes[a].hash != r.vnodes[b].hash {
			return r.vnodes[a].hash < r.vnodes[b].hash
		}
		return r.vnodes[a].node < r.vnodes[b].node
	})
	return r
}

// Nodes returns the ring's members, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node owning key: the first virtual node clockwise
// from the key's hash. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.vnodes) == 0 {
		return ""
	}
	return r.vnodes[r.search(key)].node
}

// Successors returns up to n distinct nodes in ring order starting at
// the key's owner — the replica set for the key. n <= 0 or n beyond
// the member count returns every member in ring order.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.vnodes) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.search(key); i < len(r.vnodes) && len(out) < n; i++ {
		v := r.vnodes[(start+i)%len(r.vnodes)]
		if !seen[v.node] {
			seen[v.node] = true
			out = append(out, v.node)
		}
	}
	return out
}

// search finds the index of the first vnode clockwise from the key.
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0 // wrap: past the last point, the first owns it
	}
	return i
}
