package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeProbe is a switchable probe: healthy nodes answer nil, the rest
// fail.
type fakeProbe struct {
	mu   sync.Mutex
	down map[string]bool
}

func (f *fakeProbe) set(node string, down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down == nil {
		f.down = make(map[string]bool)
	}
	f.down[node] = down
}

func (f *fakeProbe) probe(_ context.Context, node string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[node] {
		return fmt.Errorf("%s is down", node)
	}
	return nil
}

// TestTrackerStateMachine drives a peer through
// alive → suspect → dead → alive with a fake probe and checks both
// the state reads and the OnChange transitions.
func TestTrackerStateMachine(t *testing.T) {
	fp := &fakeProbe{}
	var mu sync.Mutex
	var transitions []string
	tr := NewTracker([]string{"http://a:1"}, TrackerOptions{
		Probe:     fp.probe,
		DeadAfter: 2,
		OnChange: func(node string, s State) {
			mu.Lock()
			transitions = append(transitions, s.String())
			mu.Unlock()
		},
	})
	if got := tr.State("http://a:1"); got != Alive {
		t.Fatalf("initial state = %v, want alive (unprobed peers must not be routed around)", got)
	}

	fp.set("http://a:1", true)
	tr.probeAll()
	if got := tr.State("http://a:1"); got != Suspect {
		t.Fatalf("after 1 failure: %v, want suspect", got)
	}
	tr.probeAll()
	if got := tr.State("http://a:1"); got != Dead {
		t.Fatalf("after 2 failures: %v, want dead", got)
	}
	if got := tr.AliveCount(); got != 0 {
		t.Fatalf("AliveCount with a dead peer = %d", got)
	}

	fp.set("http://a:1", false)
	tr.probeAll()
	if got := tr.State("http://a:1"); got != Alive {
		t.Fatalf("after recovery: %v, want alive (one good probe heals)", got)
	}
	if got := tr.AliveCount(); got != 1 {
		t.Fatalf("AliveCount after recovery = %d", got)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []string{"suspect", "dead", "alive"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions %v, want %v", transitions, want)
		}
	}
}

// TestTrackerUnknownNodeIsDead: a node outside the member list can
// never be routed to.
func TestTrackerUnknownNodeIsDead(t *testing.T) {
	tr := NewTracker([]string{"http://a:1"}, TrackerOptions{Probe: (&fakeProbe{}).probe})
	if got := tr.State("http://stranger:1"); got != Dead {
		t.Fatalf("unknown node state = %v, want dead", got)
	}
}

// TestTrackerLoop: the background loop probes on its own and Stop
// halts it cleanly.
func TestTrackerLoop(t *testing.T) {
	fp := &fakeProbe{}
	fp.set("http://a:1", true)
	tr := NewTracker([]string{"http://a:1"}, TrackerOptions{
		Probe:     fp.probe,
		Interval:  5 * time.Millisecond,
		DeadAfter: 2,
	})
	tr.Start()
	deadline := time.Now().Add(5 * time.Second)
	for tr.State("http://a:1") != Dead {
		if time.Now().After(deadline) {
			t.Fatal("probe loop never declared the failing peer dead")
		}
		time.Sleep(5 * time.Millisecond)
	}
	tr.Stop()
}

// TestClusterRouting: owner/replica routing skips dead nodes, the
// last node standing owns everything, and recovery restores the
// original placement.
func TestClusterRouting(t *testing.T) {
	fp := &fakeProbe{}
	c, err := New(Config{
		Self:        "http://a:1",
		Peers:       []string{"http://b:1", "http://c:1"},
		Replication: 2,
		Probe:       fp.probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Find a key owned by b so the death is observable.
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("key-%d", i)
		if c.Owner(key) == "http://b:1" {
			break
		}
	}
	origReplicas := c.Replicas(key)
	if len(origReplicas) != 2 || origReplicas[0] != "http://b:1" {
		t.Fatalf("replicas of a b-owned key: %v", origReplicas)
	}

	// Kill b: ownership moves to its ring successor, replicas stay 2.
	fp.set("http://b:1", true)
	for i := 0; i < 3; i++ {
		c.tracker.probeAll()
	}
	if got := c.Owner(key); got == "http://b:1" {
		t.Fatal("dead node still owns its keys")
	}
	if reps := c.Replicas(key); len(reps) != 2 {
		t.Fatalf("replicas with one node dead: %v, want 2 nodes", reps)
	}
	for _, n := range c.ReadTargets(key) {
		if n == "http://b:1" || c.IsSelf(n) {
			t.Fatalf("read targets include dead node or self: %v", c.ReadTargets(key))
		}
	}

	// Kill c too: self is the last node standing and owns everything.
	fp.set("http://c:1", true)
	for i := 0; i < 3; i++ {
		c.tracker.probeAll()
	}
	if got := c.Owner(key); got != "http://a:1" {
		t.Fatalf("last node standing: owner = %s, want self", got)
	}
	if reps := c.Replicas(key); len(reps) != 1 || reps[0] != "http://a:1" {
		t.Fatalf("last node standing: replicas = %v, want just self", reps)
	}

	// Recovery restores the original placement exactly.
	fp.set("http://b:1", false)
	fp.set("http://c:1", false)
	c.tracker.probeAll()
	if got := c.Owner(key); got != "http://b:1" {
		t.Fatalf("after recovery: owner = %s, want http://b:1", got)
	}
}

// TestClusterConfigValidation: a cluster needs an identity and at
// least one peer; replication clamps to the member count.
func TestClusterConfigValidation(t *testing.T) {
	if _, err := New(Config{Peers: []string{"http://b:1"}}); err == nil {
		t.Error("missing Self accepted")
	}
	if _, err := New(Config{Self: "http://a:1"}); err == nil {
		t.Error("single-node cluster accepted")
	}
	c, err := New(Config{Self: "http://a:1", Peers: []string{"http://b:1"}, Replication: 99, Probe: (&fakeProbe{}).probe})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Replication(); got != 2 {
		t.Errorf("replication clamped to %d, want 2", got)
	}
}
