package cluster

import (
	"fmt"
	"time"
)

// Config describes one node's view of the fleet.
type Config struct {
	// Self is this node's advertised base URL. It must appear in (or
	// is added to) Peers.
	Self string
	// Peers is the static member list: every node's advertised base
	// URL, self included.
	Peers []string
	// Replication is how many distinct nodes hold each accepted job
	// and settled verdict (default 2, clamped to the member count).
	Replication int
	// VirtualNodes tunes ring granularity (default
	// DefaultVirtualNodes).
	VirtualNodes int
	// ProbeInterval / ProbeTimeout / DeadAfter / Probe configure the
	// failure detector (see TrackerOptions).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	DeadAfter     int
	Probe         ProbeFunc
	// OnChange is invoked (from the probe goroutine) whenever a peer's
	// health state changes — the serving layer uses it to trigger
	// ownership rebalancing.
	OnChange func(node string, s State)
}

// Cluster is one node's routing brain: the static-membership ring
// plus the live health view. Methods are safe for concurrent use.
type Cluster struct {
	self        string
	replication int
	ring        *Ring
	tracker     *Tracker
}

// New validates the membership and builds the cluster. It does not
// start probing — call Start.
func New(cfg Config) (*Cluster, error) {
	self := Normalize(cfg.Self)
	if self == "" {
		return nil, fmt.Errorf("cluster: node needs an advertised URL")
	}
	members := append([]string{self}, cfg.Peers...)
	ring := NewRing(members, cfg.VirtualNodes)
	if ring.Len() < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 members, have %d", ring.Len())
	}
	repl := cfg.Replication
	if repl <= 0 {
		repl = 2
	}
	if repl > ring.Len() {
		repl = ring.Len()
	}
	var peers []string
	for _, n := range ring.Nodes() {
		if n != self {
			peers = append(peers, n)
		}
	}
	tracker := NewTracker(peers, TrackerOptions{
		Interval:  cfg.ProbeInterval,
		Timeout:   cfg.ProbeTimeout,
		DeadAfter: cfg.DeadAfter,
		Probe:     cfg.Probe,
		OnChange:  cfg.OnChange,
	})
	return &Cluster{self: self, replication: repl, ring: ring, tracker: tracker}, nil
}

// Start launches health probing; Stop halts it.
func (c *Cluster) Start() { c.tracker.Start() }
func (c *Cluster) Stop()  { c.tracker.Stop() }

// Self returns this node's normalized identity.
func (c *Cluster) Self() string { return c.self }

// Members returns every member, sorted.
func (c *Cluster) Members() []string { return c.ring.Nodes() }

// Replication returns the effective replication factor.
func (c *Cluster) Replication() int { return c.replication }

// IsSelf reports whether node names this node.
func (c *Cluster) IsSelf(node string) bool { return Normalize(node) == c.self }

// State returns a member's health verdict (self is always Alive).
func (c *Cluster) State(node string) State {
	if c.IsSelf(node) {
		return Alive
	}
	return c.tracker.State(node)
}

// AlivePeers counts peers currently passing probes.
func (c *Cluster) AlivePeers() int { return c.tracker.AliveCount() }

// Owner returns the healthy node owning key: the key's ring owner,
// or — when that node is dead — the first non-dead successor. Falls
// back to self when every other member is dead (the last node
// standing serves everything).
func (c *Cluster) Owner(key string) string {
	for _, n := range c.ring.Successors(key, 0) {
		if c.State(n) != Dead {
			return n
		}
	}
	return c.self
}

// Replicas returns the key's replica set: up to Replication distinct
// non-dead nodes in ring order starting at the owner. Always at least
// one node (self, when everyone else is dead).
func (c *Cluster) Replicas(key string) []string {
	out := make([]string, 0, c.replication)
	for _, n := range c.ring.Successors(key, 0) {
		if c.State(n) != Dead {
			out = append(out, n)
			if len(out) == c.replication {
				return out
			}
		}
	}
	if len(out) == 0 {
		out = append(out, c.self)
	}
	return out
}

// ReadTargets returns every non-dead member in ring-successor order
// for key, self excluded — the candidates a read that missed locally
// should be proxied to, best first.
func (c *Cluster) ReadTargets(key string) []string {
	var out []string
	for _, n := range c.ring.Successors(key, 0) {
		if !c.IsSelf(n) && c.State(n) != Dead {
			out = append(out, n)
		}
	}
	return out
}

// OwnsLocally reports whether this node is the key's current owner.
func (c *Cluster) OwnsLocally(key string) bool { return c.IsSelf(c.Owner(key)) }
