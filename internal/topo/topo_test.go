package topo

import "testing"

func TestFatTreeSizesMatchPaper(t *testing.T) {
	// Figure 6 lists nodes, links, service nodes per topology. The
	// paper's fattree8 link count (265) is a digit-swap typo for 256 —
	// see "Reproduction notes" in README.md.
	cases := []struct {
		k, nodes, links, service int
	}{
		{4, 20, 32, 7},
		{6, 45, 108, 17},
		{8, 80, 256, 31},
		{10, 125, 500, 49},
		{12, 180, 864, 71},
	}
	for _, c := range cases {
		g := FatTree(c.k)
		if len(g.Nodes) != c.nodes {
			t.Errorf("fattree%d: %d nodes, want %d", c.k, len(g.Nodes), c.nodes)
		}
		if len(g.Links) != c.links {
			t.Errorf("fattree%d: %d links, want %d", c.k, len(g.Links), c.links)
		}
		if got := len(g.NodesByRole("service")); got != c.service {
			t.Errorf("fattree%d: %d service nodes, want %d", c.k, got, c.service)
		}
		if got := len(g.NodesByRole("frontend")); got != 1 {
			t.Errorf("fattree%d: %d frontends, want 1", c.k, got)
		}
	}
}

func TestFatTreeFullyConnected(t *testing.T) {
	g := FatTree(4)
	fe := g.NodesByRole("frontend")[0]
	reach := g.Reachable(fe, nil, nil)
	if len(reach) != len(g.Nodes) {
		t.Errorf("only %d/%d nodes reachable in a healthy fat tree", len(reach), len(g.Nodes))
	}
}

func TestFatTreeRejectsOddK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd k")
		}
	}()
	FatTree(5)
}

func TestTestTopology(t *testing.T) {
	g := Test()
	if len(g.Nodes) != 7 || len(g.Links) != 8 {
		t.Fatalf("test topology: %d nodes %d links, want 7/8", len(g.Nodes), len(g.Links))
	}
	if len(g.NodesByRole("service")) != 4 {
		t.Errorf("want 4 service nodes")
	}
	fe := g.NodesByRole("frontend")[0]
	reach := g.Reachable(fe, nil, nil)
	if len(reach) != 7 {
		t.Errorf("healthy reachability = %d, want 7", len(reach))
	}
}

func TestReachabilityWithFailures(t *testing.T) {
	g := Test()
	fe := g.NodesByRole("frontend")[0]
	// Failing fe-r1 and fe-r2 isolates the front-end entirely.
	down := map[int]bool{0: true, 1: true}
	reach := g.Reachable(fe, func(l int) bool { return down[l] }, nil)
	if len(reach) != 1 {
		t.Errorf("partitioned reachability = %d, want 1 (just fe)", len(reach))
	}
	// A down node blocks paths through it.
	reach = g.Reachable(fe, nil, func(n int) bool { return g.Nodes[n].Name == "r1" })
	if reach[g.NodesByRole("service")[0]] {
		t.Error("s1 should be unreachable when r1 is down")
	}
	if !reach[g.NodesByRole("service")[2]] {
		t.Error("s3 should stay reachable via r2")
	}
}

func TestLBFigure3Shape(t *testing.T) {
	g := LBFigure3()
	if len(g.Nodes) != 8 || len(g.Links) != 8 {
		t.Fatalf("LB topology: %d nodes %d links, want 8/8", len(g.Nodes), len(g.Links))
	}
	if len(g.NodesByRole("server")) != 3 || len(g.NodesByRole("router")) != 4 {
		t.Error("want 3 servers, 4 routers")
	}
}

func TestOther(t *testing.T) {
	g := New("g")
	a := g.AddNode("a", "")
	b := g.AddNode("b", "")
	l := g.AddLink(a, b)
	if g.Other(l, a) != b || g.Other(l, b) != a {
		t.Error("Other broken")
	}
}

func TestByName(t *testing.T) {
	for name, nodes := range map[string]int{"test": 7, "fattree4": 20, "fattree12": 180, "lb": 8} {
		g, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(g.Nodes) != nodes {
			t.Errorf("%s: %d nodes, want %d", name, len(g.Nodes), nodes)
		}
	}
	for _, bad := range []string{"", "fattree3", "fattree", "fattree0", "fattree66", "fattreeX", "mesh"} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("ByName(%q) accepted", bad)
		}
	}
}
