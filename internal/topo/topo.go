// Package topo provides the network topologies used by the paper's
// case studies and scalability experiments: a generic undirected graph
// builder, the 6-node "test" topology of Figure 5, three-tier fat
// trees (Figure 6), and the 3-server/4-router load-balancer topology
// of Figure 3.
package topo

import (
	"fmt"
	"strconv"
	"strings"
)

// Node is a vertex in a topology.
type Node struct {
	ID   int
	Name string
	// Role tags nodes for the case-study generators: "core", "agg",
	// "edge", "frontend", "service", "router", "server", "lb".
	Role string
}

// Link is an undirected edge.
type Link struct {
	ID   int
	A, B int // node IDs
	Name string
}

// Graph is an undirected multigraph.
type Graph struct {
	Name  string
	Nodes []Node
	Links []Link
	adj   map[int][]int // node -> link ids
}

// New returns an empty graph.
func New(name string) *Graph {
	return &Graph{Name: name, adj: make(map[int][]int)}
}

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode(name, role string) int {
	id := len(g.Nodes)
	g.Nodes = append(g.Nodes, Node{ID: id, Name: name, Role: role})
	return id
}

// AddLink connects two nodes and returns the link ID.
func (g *Graph) AddLink(a, b int) int {
	if a < 0 || a >= len(g.Nodes) || b < 0 || b >= len(g.Nodes) {
		panic(fmt.Sprintf("topo: link endpoints %d-%d out of range", a, b))
	}
	id := len(g.Links)
	// The separator must stay identifier-safe: link names become
	// variable names in generated models ("--" would lex as a comment
	// in the textual language).
	g.Links = append(g.Links, Link{ID: id, A: a, B: b,
		Name: fmt.Sprintf("%s__%s", g.Nodes[a].Name, g.Nodes[b].Name)})
	g.adj[a] = append(g.adj[a], id)
	g.adj[b] = append(g.adj[b], id)
	return id
}

// LinksOf returns the link IDs incident to a node.
func (g *Graph) LinksOf(n int) []int { return g.adj[n] }

// Other returns the endpoint of link l opposite to node n.
func (g *Graph) Other(l, n int) int {
	lk := g.Links[l]
	if lk.A == n {
		return lk.B
	}
	return lk.A
}

// NodesByRole returns the IDs of nodes with the given role.
func (g *Graph) NodesByRole(role string) []int {
	var out []int
	for _, n := range g.Nodes {
		if n.Role == role {
			out = append(out, n.ID)
		}
	}
	return out
}

// Reachable computes the set of nodes reachable from src, skipping
// links for which linkDown returns true and nodes for which nodeDown
// returns true (the source itself is always included unless down).
func (g *Graph) Reachable(src int, linkDown func(int) bool, nodeDown func(int) bool) map[int]bool {
	out := make(map[int]bool)
	if nodeDown != nil && nodeDown(src) {
		return out
	}
	out[src] = true
	queue := []int{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, l := range g.adj[n] {
			if linkDown != nil && linkDown(l) {
				continue
			}
			m := g.Other(l, n)
			if out[m] {
				continue
			}
			if nodeDown != nil && nodeDown(m) {
				continue
			}
			out[m] = true
			queue = append(queue, m)
		}
	}
	return out
}

// Test returns the 6-node topology of the paper's Figure 5: a
// front-end connected through two relay nodes to four service nodes,
// arranged so that two link failures can partition most service nodes
// away while the reachability loop is still converging.
//
//	     fe
//	    /  \
//	  r1    r2
//	 / | \ / | \
//	s1 s2 s3 s4   (each service node links to both relays
//	               except s1–r2 and s4–r1, giving 4+2·3 nodes,
//	               8 links)
func Test() *Graph {
	g := New("test")
	fe := g.AddNode("fe", "frontend")
	r1 := g.AddNode("r1", "relay")
	r2 := g.AddNode("r2", "relay")
	s := make([]int, 4)
	for i := range s {
		s[i] = g.AddNode(fmt.Sprintf("s%d", i+1), "service")
	}
	g.AddLink(fe, r1)
	g.AddLink(fe, r2)
	g.AddLink(r1, s[0])
	g.AddLink(r1, s[1])
	g.AddLink(r2, s[2])
	g.AddLink(r2, s[3])
	g.AddLink(r1, s[2])
	g.AddLink(r2, s[1])
	return g
}

// FatTree builds a three-tier fat tree of parameter k (k even):
// (k/2)^2 core switches, k pods each with k/2 aggregation and k/2 edge
// switches; every edge switch links to every aggregation switch in its
// pod, and aggregation switch j of each pod links to core switches
// [j·k/2, (j+1)·k/2). Hosts are not modeled — the paper's Figure 6
// counts switches only (fattree4 = 20 nodes / 32 links, fattree12 =
// 180 nodes / 864 links; the paper's "265" links for fattree8 is a
// digit-swap typo for 256 — see "Reproduction notes" in README.md).
//
// One edge switch (pod 0, index 0) is the front-end; all other edge
// switches are service nodes, matching the paper's setup.
func FatTree(k int) *Graph {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree parameter must be even and >= 2, got %d", k))
	}
	g := New(fmt.Sprintf("fattree%d", k))
	half := k / 2
	core := make([]int, half*half)
	for i := range core {
		core[i] = g.AddNode(fmt.Sprintf("core%d", i), "core")
	}
	for p := 0; p < k; p++ {
		agg := make([]int, half)
		edge := make([]int, half)
		for j := 0; j < half; j++ {
			agg[j] = g.AddNode(fmt.Sprintf("agg%d_%d", p, j), "agg")
		}
		for j := 0; j < half; j++ {
			role := "service"
			if p == 0 && j == 0 {
				role = "frontend"
			}
			edge[j] = g.AddNode(fmt.Sprintf("edge%d_%d", p, j), role)
		}
		for _, e := range edge {
			for _, a := range agg {
				g.AddLink(e, a)
			}
		}
		for j, a := range agg {
			for c := j * half; c < (j+1)*half; c++ {
				g.AddLink(a, core[c])
			}
		}
	}
	return g
}

// ByName resolves a topology by its generator name — "test",
// "fattreeN" (N even, 2..64), or "lb" — so CLIs and the daemon can
// accept topology selections on the wire without shipping graphs.
func ByName(name string) (*Graph, error) {
	switch {
	case name == "test":
		return Test(), nil
	case name == "lb":
		return LBFigure3(), nil
	case strings.HasPrefix(name, "fattree"):
		k, err := strconv.Atoi(name[len("fattree"):])
		if err != nil || k < 2 || k%2 != 0 || k > 64 {
			return nil, fmt.Errorf("topo: bad fat-tree name %q (want fattreeN, N even in 2..64)", name)
		}
		return FatTree(k), nil
	}
	return nil, fmt.Errorf("topo: unknown topology %q (want test, fattreeN, or lb)", name)
}

// LBFigure3 builds the load-balancer topology of Figure 3: a load
// balancer behind router R1, which fans out to R2, R3 and R4; server
// s1 hangs off R2, s2 off both R2 and R3, s3 off R4. Replica
// placement and ECMP path choices live in the lbecmp model, not the
// graph.
func LBFigure3() *Graph {
	g := New("lb-figure3")
	lb := g.AddNode("lb", "lb")
	r1 := g.AddNode("R1", "router")
	r2 := g.AddNode("R2", "router")
	r3 := g.AddNode("R3", "router")
	r4 := g.AddNode("R4", "router")
	s1 := g.AddNode("s1", "server")
	s2 := g.AddNode("s2", "server")
	s3 := g.AddNode("s3", "server")
	g.AddLink(lb, r1)
	g.AddLink(r1, r2)
	g.AddLink(r1, r3)
	g.AddLink(r1, r4)
	g.AddLink(r2, s1)
	g.AddLink(r2, s2)
	g.AddLink(r3, s2)
	g.AddLink(r4, s3)
	return g
}
