package smt

import (
	"fmt"
	"math/big"
	"sort"
)

// bound is a one-sided bound on a simplex variable, tagged with an
// opaque explanation id (verdict uses atom-polarity tags).
type bound struct {
	val Delta
	tag int
	set bool
}

// Simplex is an exact-arithmetic general simplex solver over bounded
// variables, after Dutertre & de Moura. Variables are dense indices;
// rows define basic variables as linear combinations of nonbasic
// ones. Bland's rule guarantees termination.
type Simplex struct {
	n     int
	rows  map[int]map[int]*big.Rat // basic var -> coefficient per nonbasic var
	inRow map[int][]int            // nonbasic var -> basic vars whose row mentions it (approximate, lazily cleaned)
	lower []bound
	upper []bound
	beta  []Delta
}

// NewSimplex returns an empty tableau.
func NewSimplex() *Simplex {
	return &Simplex{
		rows:  make(map[int]map[int]*big.Rat),
		inRow: make(map[int][]int),
	}
}

// NewVar allocates a fresh (nonbasic, unbounded) variable.
func (s *Simplex) NewVar() int {
	v := s.n
	s.n++
	s.lower = append(s.lower, bound{})
	s.upper = append(s.upper, bound{})
	s.beta = append(s.beta, DZero())
	return v
}

// DefineSlack introduces a fresh variable constrained to equal
// Σ coeffs[x]·x and returns it. References to basic variables are
// substituted through their rows so the tableau stays in normal form.
func (s *Simplex) DefineSlack(coeffs map[int]*big.Rat) int {
	row := make(map[int]*big.Rat)
	for x, c := range coeffs {
		if c.Sign() == 0 {
			continue
		}
		if sub, isBasic := s.rows[x]; isBasic {
			for y, d := range sub {
				addInto(row, y, new(big.Rat).Mul(c, d))
			}
		} else {
			addInto(row, x, c)
		}
	}
	v := s.NewVar()
	s.rows[v] = row
	val := DZero()
	for x, c := range row {
		val = val.Add(s.beta[x].Scale(c))
		s.inRow[x] = append(s.inRow[x], v)
	}
	s.beta[v] = val
	return v
}

func addInto(row map[int]*big.Rat, x int, c *big.Rat) {
	if old, ok := row[x]; ok {
		sum := new(big.Rat).Add(old, c)
		if sum.Sign() == 0 {
			delete(row, x)
		} else {
			row[x] = sum
		}
	} else if c.Sign() != 0 {
		row[x] = new(big.Rat).Set(c)
	}
}

// Conflict is a minimal-ish inconsistent set of bound tags.
type Conflict []int

// AssertUpper imposes x <= v (in delta-rational order). It returns a
// conflict if the new bound contradicts x's lower bound.
func (s *Simplex) AssertUpper(x int, v Delta, tag int) Conflict {
	if s.upper[x].set && s.upper[x].val.Cmp(v) <= 0 {
		return nil // existing bound is at least as tight
	}
	if s.lower[x].set && v.Cmp(s.lower[x].val) < 0 {
		return Conflict{tag, s.lower[x].tag}
	}
	s.upper[x] = bound{val: v, tag: tag, set: true}
	if _, isBasic := s.rows[x]; !isBasic && s.beta[x].Cmp(v) > 0 {
		s.update(x, v)
	}
	return nil
}

// AssertLower imposes x >= v.
func (s *Simplex) AssertLower(x int, v Delta, tag int) Conflict {
	if s.lower[x].set && s.lower[x].val.Cmp(v) >= 0 {
		return nil
	}
	if s.upper[x].set && v.Cmp(s.upper[x].val) > 0 {
		return Conflict{tag, s.upper[x].tag}
	}
	s.lower[x] = bound{val: v, tag: tag, set: true}
	if _, isBasic := s.rows[x]; !isBasic && s.beta[x].Cmp(v) < 0 {
		s.update(x, v)
	}
	return nil
}

// update sets nonbasic x to v, adjusting dependent basic variables.
func (s *Simplex) update(x int, v Delta) {
	diff := v.Sub(s.beta[x])
	for _, b := range s.occurrences(x) {
		c := s.rows[b][x]
		s.beta[b] = s.beta[b].Add(diff.Scale(c))
	}
	s.beta[x] = v
}

// occurrences returns basic vars whose rows mention nonbasic x,
// cleaning stale entries left behind by pivots and deduplicating
// (pivot substitution may register the same row several times; the β
// maintenance loops must visit each row exactly once).
func (s *Simplex) occurrences(x int) []int {
	list := s.inRow[x]
	out := list[:0]
	seen := make(map[int]bool, len(list))
	for _, b := range list {
		if seen[b] {
			continue
		}
		if row, ok := s.rows[b]; ok {
			if _, mentions := row[x]; mentions {
				seen[b] = true
				out = append(out, b)
			}
		}
	}
	s.inRow[x] = out
	return out
}

// Check searches for an assignment within all bounds, pivoting as
// needed. It returns nil on success (Model is then valid) or a
// conflict explanation.
func (s *Simplex) Check() Conflict {
	for {
		// Bland's rule: smallest violating basic variable.
		xi := -1
		belowLower := false
		basics := make([]int, 0, len(s.rows))
		for b := range s.rows {
			basics = append(basics, b)
		}
		sort.Ints(basics)
		for _, b := range basics {
			if s.lower[b].set && s.beta[b].Cmp(s.lower[b].val) < 0 {
				xi, belowLower = b, true
				break
			}
			if s.upper[b].set && s.beta[b].Cmp(s.upper[b].val) > 0 {
				xi, belowLower = b, false
				break
			}
		}
		if xi < 0 {
			return nil
		}
		row := s.rows[xi]
		cols := make([]int, 0, len(row))
		for x := range row {
			cols = append(cols, x)
		}
		sort.Ints(cols)
		xj := -1
		for _, x := range cols {
			a := row[x]
			if belowLower {
				// Need to increase xi.
				if (a.Sign() > 0 && s.canIncrease(x)) || (a.Sign() < 0 && s.canDecrease(x)) {
					xj = x
					break
				}
			} else {
				if (a.Sign() > 0 && s.canDecrease(x)) || (a.Sign() < 0 && s.canIncrease(x)) {
					xj = x
					break
				}
			}
		}
		if xj < 0 {
			// Infeasible: explain from the row's saturated bounds.
			var confl Conflict
			if belowLower {
				confl = append(confl, s.lower[xi].tag)
				for _, x := range cols {
					if row[x].Sign() > 0 {
						confl = append(confl, s.upper[x].tag)
					} else {
						confl = append(confl, s.lower[x].tag)
					}
				}
			} else {
				confl = append(confl, s.upper[xi].tag)
				for _, x := range cols {
					if row[x].Sign() > 0 {
						confl = append(confl, s.lower[x].tag)
					} else {
						confl = append(confl, s.upper[x].tag)
					}
				}
			}
			return confl
		}
		if belowLower {
			s.pivotAndUpdate(xi, xj, s.lower[xi].val)
		} else {
			s.pivotAndUpdate(xi, xj, s.upper[xi].val)
		}
	}
}

func (s *Simplex) canIncrease(x int) bool {
	return !s.upper[x].set || s.beta[x].Cmp(s.upper[x].val) < 0
}

func (s *Simplex) canDecrease(x int) bool {
	return !s.lower[x].set || s.beta[x].Cmp(s.lower[x].val) > 0
}

// pivotAndUpdate makes xi nonbasic at value v and xj basic.
func (s *Simplex) pivotAndUpdate(xi, xj int, v Delta) {
	row := s.rows[xi]
	a := row[xj]
	theta := v.Sub(s.beta[xi]).Quo(a)
	s.beta[xi] = v
	s.beta[xj] = s.beta[xj].Add(theta)
	for _, b := range s.occurrences(xj) {
		if b == xi {
			continue
		}
		c := s.rows[b][xj]
		s.beta[b] = s.beta[b].Add(theta.Scale(c))
	}
	// Pivot the tableau: xj = (xi - Σ_{l≠j} a_l x_l) / a.
	delete(s.rows, xi)
	newRow := make(map[int]*big.Rat)
	inv := new(big.Rat).Inv(a)
	newRow[xi] = inv
	for l, c := range row {
		if l == xj {
			continue
		}
		newRow[l] = new(big.Rat).Neg(new(big.Rat).Mul(c, inv))
	}
	s.rows[xj] = newRow
	s.inRow[xi] = append(s.inRow[xi], xj)
	for l := range newRow {
		s.inRow[l] = append(s.inRow[l], xj)
	}
	// Substitute xj out of every other row.
	for _, b := range s.occurrences(xj) {
		if b == xj {
			continue
		}
		rb := s.rows[b]
		c, ok := rb[xj]
		if !ok {
			continue
		}
		delete(rb, xj)
		for l, d := range newRow {
			addInto(rb, l, new(big.Rat).Mul(c, d))
			s.inRow[l] = append(s.inRow[l], b)
		}
	}
}

// Model returns concrete rational values for all variables, choosing a
// concrete positive value for δ small enough to respect every strict
// bound.
func (s *Simplex) Model() []*big.Rat {
	eps := s.chooseEps()
	out := make([]*big.Rat, s.n)
	for i := range out {
		out[i] = s.beta[i].Concretize(eps)
	}
	return out
}

// chooseEps picks δ so every bound still holds after concretization.
func (s *Simplex) chooseEps() *big.Rat {
	eps := big.NewRat(1, 1)
	tighten := func(gapR, gapD *big.Rat) {
		// Need gapR + gapD·ε >= 0 given gapR >= 0; if gapD < 0,
		// ε <= gapR / -gapD. Keep a margin of half.
		if gapD.Sign() >= 0 {
			return
		}
		cap := new(big.Rat).Quo(gapR, new(big.Rat).Neg(gapD))
		half := new(big.Rat).Mul(cap, big.NewRat(1, 2))
		if half.Sign() > 0 && half.Cmp(eps) < 0 {
			eps = half
		}
	}
	for i := 0; i < s.n; i++ {
		if s.upper[i].set {
			gap := s.upper[i].val.Sub(s.beta[i]) // >= 0 in delta order
			tighten(gap.R, gap.D)
		}
		if s.lower[i].set {
			gap := s.beta[i].Sub(s.lower[i].val)
			tighten(gap.R, gap.D)
		}
	}
	return eps
}

// Value returns the current delta-rational assignment of a variable.
func (s *Simplex) Value(x int) Delta { return s.beta[x] }

func (s *Simplex) String() string {
	return fmt.Sprintf("simplex{%d vars, %d rows}", s.n, len(s.rows))
}
