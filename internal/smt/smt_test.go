package smt

import (
	"math/big"
	"testing"

	"verdict/internal/expr"
	"verdict/internal/sat"
)

func rat(n, d int64) *big.Rat { return big.NewRat(n, d) }

func TestDeltaOrdering(t *testing.T) {
	a := DRat(rat(1, 1))
	b := DStrictAbove(rat(1, 1)) // 1 + δ
	c := DStrictBelow(rat(1, 1)) // 1 - δ
	if !(c.Cmp(a) < 0 && a.Cmp(b) < 0) {
		t.Fatalf("ordering broken: %v %v %v", c, a, b)
	}
	if a.Add(b).Cmp(Delta{R: rat(2, 1), D: rat(1, 1)}) != 0 {
		t.Error("Add wrong")
	}
	if b.Sub(c).Cmp(Delta{R: rat(0, 1), D: rat(2, 1)}) != 0 {
		t.Error("Sub wrong")
	}
	if b.Scale(rat(-2, 1)).Cmp(Delta{R: rat(-2, 1), D: rat(-2, 1)}) != 0 {
		t.Error("Scale wrong")
	}
}

func TestSimplexFeasible(t *testing.T) {
	// x + y <= 10, x >= 3, y >= 4: feasible.
	s := NewSimplex()
	x, y := s.NewVar(), s.NewVar()
	sum := s.DefineSlack(map[int]*big.Rat{x: rat(1, 1), y: rat(1, 1)})
	if c := s.AssertUpper(sum, DRat(rat(10, 1)), 0); c != nil {
		t.Fatalf("assert upper: conflict %v", c)
	}
	if c := s.AssertLower(x, DRat(rat(3, 1)), 1); c != nil {
		t.Fatalf("assert lower x: conflict %v", c)
	}
	if c := s.AssertLower(y, DRat(rat(4, 1)), 2); c != nil {
		t.Fatalf("assert lower y: conflict %v", c)
	}
	if c := s.Check(); c != nil {
		t.Fatalf("Check: conflict %v", c)
	}
	m := s.Model()
	sumV := new(big.Rat).Add(m[x], m[y])
	if sumV.Cmp(rat(10, 1)) > 0 || m[x].Cmp(rat(3, 1)) < 0 || m[y].Cmp(rat(4, 1)) < 0 {
		t.Errorf("model violates constraints: x=%v y=%v", m[x], m[y])
	}
}

func TestSimplexInfeasible(t *testing.T) {
	// x + y <= 5, x >= 3, y >= 4: infeasible.
	s := NewSimplex()
	x, y := s.NewVar(), s.NewVar()
	sum := s.DefineSlack(map[int]*big.Rat{x: rat(1, 1), y: rat(1, 1)})
	s.AssertUpper(sum, DRat(rat(5, 1)), 10)
	s.AssertLower(x, DRat(rat(3, 1)), 11)
	s.AssertLower(y, DRat(rat(4, 1)), 12)
	confl := s.Check()
	if confl == nil {
		t.Fatal("expected conflict")
	}
	// Conflict must mention all three constraints (they are all needed).
	seen := map[int]bool{}
	for _, tag := range confl {
		seen[tag] = true
	}
	if !seen[10] || !seen[11] || !seen[12] {
		t.Errorf("conflict %v should involve tags 10,11,12", confl)
	}
}

func TestSimplexStrictBounds(t *testing.T) {
	// x < 1 and x > 0: feasible with a concrete model strictly inside.
	s := NewSimplex()
	x := s.NewVar()
	s.AssertUpper(x, DStrictBelow(rat(1, 1)), 0)
	s.AssertLower(x, DStrictAbove(rat(0, 1)), 1)
	if c := s.Check(); c != nil {
		t.Fatalf("Check: %v", c)
	}
	m := s.Model()
	if m[x].Cmp(rat(0, 1)) <= 0 || m[x].Cmp(rat(1, 1)) >= 0 {
		t.Errorf("model x=%v not strictly inside (0,1)", m[x])
	}
	// x < 1 and x > 1: infeasible.
	s2 := NewSimplex()
	y := s2.NewVar()
	if c := s2.AssertUpper(y, DStrictBelow(rat(1, 1)), 0); c != nil {
		t.Fatalf("unexpected conflict: %v", c)
	}
	if c := s2.AssertLower(y, DStrictAbove(rat(1, 1)), 1); c == nil {
		if c = s2.Check(); c == nil {
			t.Fatal("x<1 & x>1 should conflict")
		}
	}
}

func TestSimplexStrictVsEqualBoundary(t *testing.T) {
	// x <= 1 and x >= 1 feasible (x=1); x < 1 and x >= 1 infeasible.
	s := NewSimplex()
	x := s.NewVar()
	s.AssertUpper(x, DRat(rat(1, 1)), 0)
	s.AssertLower(x, DRat(rat(1, 1)), 1)
	if c := s.Check(); c != nil {
		t.Fatalf("x=1: %v", c)
	}
	if s.Model()[x].Cmp(rat(1, 1)) != 0 {
		t.Errorf("x = %v, want 1", s.Model()[x])
	}

	s2 := NewSimplex()
	y := s2.NewVar()
	c := s2.AssertUpper(y, DStrictBelow(rat(1, 1)), 0)
	if c == nil {
		c = s2.AssertLower(y, DRat(rat(1, 1)), 1)
	}
	if c == nil {
		c = s2.Check()
	}
	if c == nil {
		t.Fatal("x<1 & x>=1 should conflict")
	}
}

func TestSimplexChainedEqualities(t *testing.T) {
	// a = b, b = c, a >= 5, c <= 4: infeasible.
	s := NewSimplex()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	ab := s.DefineSlack(map[int]*big.Rat{a: rat(1, 1), b: rat(-1, 1)})
	bc := s.DefineSlack(map[int]*big.Rat{b: rat(1, 1), c: rat(-1, 1)})
	s.AssertUpper(ab, DZero(), 0)
	s.AssertLower(ab, DZero(), 1)
	s.AssertUpper(bc, DZero(), 2)
	s.AssertLower(bc, DZero(), 3)
	s.AssertLower(a, DRat(rat(5, 1)), 4)
	s.AssertUpper(c, DRat(rat(4, 1)), 5)
	if s.Check() == nil {
		t.Fatal("transitive equality chain should be infeasible")
	}
}

// --- Context tests ---

func mkRealParam(name string) *expr.Var {
	return &expr.Var{Name: name, T: expr.Real(), Param: true}
}

func TestContextFeasible(t *testing.T) {
	c := NewContext()
	x := mkRealParam("x")
	y := mkRealParam("y")
	// x > 0 & y > x & x + y < 10
	c.Assert(expr.Gt(x.Ref(), expr.RealFrac(0, 1)), nil, nil)
	c.Assert(expr.Gt(y.Ref(), x.Ref()), nil, nil)
	c.Assert(expr.Lt(expr.Add(x.Ref(), y.Ref()), expr.RealFrac(10, 1)), nil, nil)
	if got := c.Solve(); got != sat.Sat {
		t.Fatalf("Solve = %v, want sat", got)
	}
	xv, yv := c.RealValue(x, nil), c.RealValue(y, nil)
	if xv.Sign() <= 0 || yv.Cmp(xv) <= 0 || new(big.Rat).Add(xv, yv).Cmp(rat(10, 1)) >= 0 {
		t.Errorf("model x=%v y=%v violates constraints", xv, yv)
	}
}

func TestContextInfeasible(t *testing.T) {
	c := NewContext()
	x := mkRealParam("x")
	c.Assert(expr.Gt(x.Ref(), expr.RealFrac(5, 1)), nil, nil)
	c.Assert(expr.Lt(x.Ref(), expr.RealFrac(3, 1)), nil, nil)
	if got := c.Solve(); got != sat.Unsat {
		t.Fatalf("Solve = %v, want unsat", got)
	}
}

func TestContextBooleanTheoryInterplay(t *testing.T) {
	// b -> x > 5; !b -> x < 1; x = 3  ==> unsat regardless of b.
	c := NewContext()
	x := mkRealParam("x")
	b := &expr.Var{Name: "b", T: expr.Bool()}
	f := c.Enc.NewFrame([]*expr.Var{b})
	c.Assert(expr.Implies(b.Ref(), expr.Gt(x.Ref(), expr.RealFrac(5, 1))), f, nil)
	c.Assert(expr.Implies(expr.Not(b.Ref()), expr.Lt(x.Ref(), expr.RealFrac(1, 1))), f, nil)
	c.Assert(expr.Eq(x.Ref(), expr.RealFrac(3, 1)), nil, nil)
	if got := c.Solve(); got != sat.Unsat {
		t.Fatalf("Solve = %v, want unsat", got)
	}
	if c.TheoryConflicts == 0 {
		t.Error("expected at least one theory conflict")
	}
}

func TestContextDisequality(t *testing.T) {
	// x != 2 & x >= 2 & x <= 2: unsat.
	c := NewContext()
	x := mkRealParam("x")
	c.Assert(expr.Ne(x.Ref(), expr.RealFrac(2, 1)), nil, nil)
	c.Assert(expr.Ge(x.Ref(), expr.RealFrac(2, 1)), nil, nil)
	c.Assert(expr.Le(x.Ref(), expr.RealFrac(2, 1)), nil, nil)
	if got := c.Solve(); got != sat.Unsat {
		t.Fatalf("Solve = %v, want unsat", got)
	}
	// x != 2 & x >= 2: sat with x > 2.
	c2 := NewContext()
	y := mkRealParam("y")
	c2.Assert(expr.Ne(y.Ref(), expr.RealFrac(2, 1)), nil, nil)
	c2.Assert(expr.Ge(y.Ref(), expr.RealFrac(2, 1)), nil, nil)
	if got := c2.Solve(); got != sat.Sat {
		t.Fatalf("Solve = %v, want sat", got)
	}
	if c2.RealValue(y, nil).Cmp(rat(2, 1)) <= 0 {
		t.Errorf("y = %v, want > 2", c2.RealValue(y, nil))
	}
}

func TestContextIte(t *testing.T) {
	// y = ite(b, x+1, x-1); y = x+1 & !b  ==> unsat... we encode:
	// b=false and require ite(b,x+1,x-1) > x: impossible (x-1 > x).
	c := NewContext()
	x := mkRealParam("x")
	b := &expr.Var{Name: "b", T: expr.Bool()}
	f := c.Enc.NewFrame([]*expr.Var{b})
	ite := expr.Ite(b.Ref(), expr.Add(x.Ref(), expr.RealFrac(1, 1)), expr.Sub(x.Ref(), expr.RealFrac(1, 1)))
	c.Assert(expr.Not(b.Ref()), f, nil)
	c.Assert(expr.Gt(ite, x.Ref()), f, nil)
	if got := c.Solve(); got != sat.Unsat {
		t.Fatalf("Solve = %v, want unsat", got)
	}
	// With b free it is satisfiable (b must become true).
	c2 := NewContext()
	x2 := mkRealParam("x")
	b2 := &expr.Var{Name: "b", T: expr.Bool()}
	f2 := c2.Enc.NewFrame([]*expr.Var{b2})
	ite2 := expr.Ite(b2.Ref(), expr.Add(x2.Ref(), expr.RealFrac(1, 1)), expr.Sub(x2.Ref(), expr.RealFrac(1, 1)))
	c2.Assert(expr.Gt(ite2, x2.Ref()), f2, nil)
	if got := c2.Solve(); got != sat.Sat {
		t.Fatalf("Solve = %v, want sat", got)
	}
	if c2.Enc.Model(f2, b2).B != true {
		t.Error("b must be true in any model")
	}
}

func TestContextLinearCombination(t *testing.T) {
	// 2x + 3y <= 12 & x >= 3 & y >= 2: exactly x=3,y=2 boundary ok.
	c := NewContext()
	x, y := mkRealParam("x"), mkRealParam("y")
	lhs := expr.Add(expr.Mul(expr.RealFrac(2, 1), x.Ref()), expr.Mul(expr.RealFrac(3, 1), y.Ref()))
	c.Assert(expr.Le(lhs, expr.RealFrac(12, 1)), nil, nil)
	c.Assert(expr.Ge(x.Ref(), expr.RealFrac(3, 1)), nil, nil)
	c.Assert(expr.Ge(y.Ref(), expr.RealFrac(2, 1)), nil, nil)
	if got := c.Solve(); got != sat.Sat {
		t.Fatalf("Solve = %v, want sat", got)
	}
	xv, yv := c.RealValue(x, nil), c.RealValue(y, nil)
	total := new(big.Rat).Add(new(big.Rat).Mul(rat(2, 1), xv), new(big.Rat).Mul(rat(3, 1), yv))
	if total.Cmp(rat(12, 1)) > 0 {
		t.Errorf("2x+3y = %v > 12", total)
	}
	// Tighten: y >= 3 makes it unsat (2*3 + 3*3 = 15 > 12).
	c.Assert(expr.Ge(y.Ref(), expr.RealFrac(3, 1)), nil, nil)
	if got := c.Solve(); got != sat.Unsat {
		t.Fatalf("tightened Solve = %v, want unsat", got)
	}
}

func TestContextDivByConstant(t *testing.T) {
	c := NewContext()
	x := mkRealParam("x")
	c.Assert(expr.Eq(expr.Div(x.Ref(), expr.RealFrac(2, 1)), expr.RealFrac(3, 1)), nil, nil)
	if got := c.Solve(); got != sat.Sat {
		t.Fatalf("Solve = %v", got)
	}
	if c.RealValue(x, nil).Cmp(rat(6, 1)) != 0 {
		t.Errorf("x = %v, want 6", c.RealValue(x, nil))
	}
}

func TestContextNonlinearRejected(t *testing.T) {
	c := NewContext()
	x, y := mkRealParam("x"), mkRealParam("y")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nonlinear product")
		}
	}()
	c.Assert(expr.Gt(expr.Mul(x.Ref(), y.Ref()), expr.RealFrac(1, 1)), nil, nil)
}

func TestContextAtomDedup(t *testing.T) {
	c := NewContext()
	x := mkRealParam("x")
	l1 := c.Lit(expr.Le(x.Ref(), expr.RealFrac(5, 1)), nil, nil)
	// 2x <= 10 normalizes to the same atom.
	l2 := c.Lit(expr.Le(expr.Mul(expr.RealFrac(2, 1), x.Ref()), expr.RealFrac(10, 1)), nil, nil)
	if l1 != l2 {
		t.Errorf("equivalent atoms got distinct literals %v %v", l1, l2)
	}
	if c.NumAtoms() != 1 {
		t.Errorf("NumAtoms = %d, want 1", c.NumAtoms())
	}
}

func TestContextBlockFullAssignmentAblation(t *testing.T) {
	mk := func(blockFull bool) int {
		c := NewContext()
		c.BlockFullAssignment = blockFull
		x := mkRealParam("x")
		// Irrelevant boolean chaff plus a core contradiction.
		chaff := make([]*expr.Var, 6)
		for i := range chaff {
			chaff[i] = &expr.Var{Name: "c", T: expr.Bool(), ID: i}
		}
		f := c.Enc.NewFrame(chaff)
		for _, ch := range chaff {
			c.Assert(expr.Or(ch.Ref(), expr.Not(ch.Ref())), f, nil)
			// Tie each chaff var to a harmless atom so it reaches the theory.
			c.Assert(expr.Implies(ch.Ref(), expr.Ge(x.Ref(), expr.RealFrac(-1000, 1))), f, nil)
		}
		c.Assert(expr.Gt(x.Ref(), expr.RealFrac(5, 1)), nil, nil)
		c.Assert(expr.Lt(x.Ref(), expr.RealFrac(3, 1)), nil, nil)
		if got := c.Solve(); got != sat.Unsat {
			t.Fatalf("Solve = %v, want unsat", got)
		}
		return c.TheoryConflicts
	}
	precise := mk(false)
	full := mk(true)
	if precise > full {
		t.Errorf("explanation-based conflicts (%d) should not exceed full-assignment blocking (%d)", precise, full)
	}
}

func TestContextParamsSharedAcrossFrames(t *testing.T) {
	// The same parameter referenced with different frames must resolve
	// to one theory variable.
	c := NewContext()
	p := mkRealParam("p")
	b := &expr.Var{Name: "b", T: expr.Bool()}
	f1 := c.Enc.NewFrame([]*expr.Var{b})
	f2 := c.Enc.NewFrame([]*expr.Var{b})
	c.Assert(expr.Gt(p.Ref(), expr.RealFrac(3, 1)), f1, nil)
	c.Assert(expr.Lt(p.Ref(), expr.RealFrac(2, 1)), f2, nil)
	if got := c.Solve(); got != sat.Unsat {
		t.Fatalf("Solve = %v, want unsat (param must be frame-independent)", got)
	}
}
