package smt

import (
	"math/big"
	"math/rand"
	"testing"

	"verdict/internal/expr"
	"verdict/internal/sat"
)

// Known-satisfiable fuzz: pick a random rational point, generate random
// linear atoms, assert each with the polarity that holds at the point.
// The context must report SAT.
func TestFuzzPointSatisfiable(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(3)
		point := make([]*big.Rat, n)
		vars := make([]*expr.Var, n)
		for i := range point {
			point[i] = big.NewRat(int64(rng.Intn(21)-10), int64(1+rng.Intn(4)))
			vars[i] = &expr.Var{Name: string(rune('a' + i)), T: expr.Real(), Param: true}
		}
		ctx := NewContext()
		nAtoms := 3 + rng.Intn(10)
		for j := 0; j < nAtoms; j++ {
			// random linear sum
			lhsVal := new(big.Rat)
			var terms []*expr.Expr
			for i := 0; i < n; i++ {
				c := int64(rng.Intn(9) - 4)
				if c == 0 {
					continue
				}
				cr := big.NewRat(c, 1)
				terms = append(terms, expr.Mul(expr.RealConst(cr), vars[i].Ref()))
				lhsVal.Add(lhsVal, new(big.Rat).Mul(cr, point[i]))
			}
			if len(terms) == 0 {
				continue
			}
			lhs := expr.Add(terms...)
			k := big.NewRat(int64(rng.Intn(21)-10), int64(1+rng.Intn(3)))
			var at *expr.Expr
			switch rng.Intn(4) {
			case 0:
				at = expr.Le(lhs, expr.RealConst(k))
			case 1:
				at = expr.Lt(lhs, expr.RealConst(k))
			case 2:
				at = expr.Ge(lhs, expr.RealConst(k))
			default:
				at = expr.Gt(lhs, expr.RealConst(k))
			}
			holds, err := expr.EvalBool(at, expr.MapEnv{
				vars[0]: expr.RealValue(point[0]),
			}, nil)
			_ = holds
			_ = err
			// evaluate properly with all vars
			env := expr.MapEnv{}
			for i, v := range vars {
				env[v] = expr.RealValue(point[i])
			}
			holds, err = expr.EvalBool(at, env, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !holds {
				at = expr.Not(at)
			}
			ctx.Assert(at, nil, nil)
		}
		if st := ctx.Solve(); st != sat.Sat {
			t.Fatalf("trial %d: point-satisfiable instance reported %v", trial, st)
		}
	}
}

// TestFuzzModelSoundness complements the point-satisfiable fuzz: on
// random (possibly unsatisfiable) instances, whenever the context
// reports SAT its model must actually satisfy every asserted atom —
// catching false-SAT results from a buggy simplex assignment.
func TestFuzzModelSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(3)
		vars := make([]*expr.Var, n)
		for i := range vars {
			vars[i] = &expr.Var{Name: string(rune('a' + i)), T: expr.Real(), Param: true}
		}
		ctx := NewContext()
		var asserted []*expr.Expr
		nAtoms := 2 + rng.Intn(8)
		for j := 0; j < nAtoms; j++ {
			var terms []*expr.Expr
			for i := 0; i < n; i++ {
				c := int64(rng.Intn(7) - 3)
				if c == 0 {
					continue
				}
				terms = append(terms, expr.Mul(expr.RealConst(big.NewRat(c, 1)), vars[i].Ref()))
			}
			if len(terms) == 0 {
				continue
			}
			lhs := expr.Add(terms...)
			k := big.NewRat(int64(rng.Intn(11)-5), int64(1+rng.Intn(3)))
			ops := []func(a, b *expr.Expr) *expr.Expr{expr.Le, expr.Lt, expr.Ge, expr.Gt, expr.Eq, expr.Ne}
			at := ops[rng.Intn(len(ops))](lhs, expr.RealConst(k))
			if rng.Intn(4) == 0 {
				at = expr.Not(at)
			}
			asserted = append(asserted, at)
			ctx.Assert(at, nil, nil)
		}
		if st := ctx.Solve(); st == sat.Sat {
			env := expr.MapEnv{}
			for _, v := range vars {
				env[v] = expr.RealValue(ctx.RealValue(v, nil))
			}
			for _, at := range asserted {
				ok, err := expr.EvalBool(at, env, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("trial %d: model violates asserted atom %s", trial, at)
				}
			}
		}
	}
}
