package smt

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"verdict/internal/cnf"
	"verdict/internal/expr"
	"verdict/internal/sat"
)

// linExpr is a linear form Σ coeffs[v]·tvar_v + konst over theory
// variables.
type linExpr struct {
	coeffs map[int]*big.Rat
	konst  *big.Rat
}

func constLin(k *big.Rat) linExpr {
	return linExpr{coeffs: map[int]*big.Rat{}, konst: k}
}

func (l linExpr) isConst() bool { return len(l.coeffs) == 0 }

func (l linExpr) add(o linExpr, sign int) linExpr {
	out := linExpr{coeffs: make(map[int]*big.Rat, len(l.coeffs)+len(o.coeffs)), konst: new(big.Rat)}
	for v, c := range l.coeffs {
		out.coeffs[v] = new(big.Rat).Set(c)
	}
	s := big.NewRat(int64(sign), 1)
	for v, c := range o.coeffs {
		addInto(out.coeffs, v, new(big.Rat).Mul(s, c))
	}
	out.konst.Add(l.konst, new(big.Rat).Mul(s, o.konst))
	return out
}

func (l linExpr) scale(k *big.Rat) linExpr {
	out := linExpr{coeffs: make(map[int]*big.Rat, len(l.coeffs)), konst: new(big.Rat).Mul(l.konst, k)}
	for v, c := range l.coeffs {
		if p := new(big.Rat).Mul(c, k); p.Sign() != 0 {
			out.coeffs[v] = p
		}
	}
	return out
}

// atom is a theory atom Σ coeffs·x ⋈ k with ⋈ ∈ {≤, <}; its boolean
// face is lit.
type atom struct {
	lin    linExpr
	strict bool
	lit    sat.Lit
}

type tvarKey struct {
	v   *expr.Var
	fid int
}

// Context couples a SAT solver, a CNF encoder for the finite fragment,
// and the LRA theory. Use NewContext, compile constraints with Lit or
// Assert, then call Solve.
type Context struct {
	Sat *sat.Solver
	Enc *cnf.Encoder

	// MaxTheoryIterations bounds the lazy refinement loop (0 = 10^6).
	MaxTheoryIterations int
	// TheoryConflicts counts blocking clauses learned (statistics).
	TheoryConflicts int
	// BlockFullAssignment, when true, blocks theory conflicts with the
	// full atom assignment instead of the simplex explanation — the
	// ablation knob measuring how much conflict explanations matter.
	BlockFullAssignment bool

	tvars    []string // theory var names, index = theory var id
	varOf    map[tvarKey]int
	atoms    []atom
	atomKey  map[string]int // canonical form -> atom index
	iteMemo  map[iteKey]linExpr
	iteCount int
	fids     map[*cnf.Frame]int
	nextFid  int

	model []*big.Rat // theory model after a Sat result
}

type iteKey struct {
	e        *expr.Expr
	cur, nxt int
}

// NewContext returns a context over fresh SAT and CNF instances.
func NewContext() *Context {
	s := sat.New()
	c := &Context{
		Sat:     s,
		Enc:     cnf.NewEncoder(s),
		varOf:   make(map[tvarKey]int),
		atomKey: make(map[string]int),
		iteMemo: make(map[iteKey]linExpr),
		fids:    make(map[*cnf.Frame]int),
	}
	c.Enc.Extern = c.extern
	return c
}

// TheoryVar returns (allocating on first use) the theory variable for
// a real ts variable in the given frame. Frame nil means the global
// (parameter) frame.
func (c *Context) TheoryVar(v *expr.Var, frame *cnf.Frame) int {
	key := tvarKey{v, c.frameID(frame)}
	if id, ok := c.varOf[key]; ok {
		return id
	}
	id := len(c.tvars)
	c.tvars = append(c.tvars, fmt.Sprintf("%s@%d", v.Name, key.fid))
	c.varOf[key] = id
	return id
}

// frameID assigns stable small ids to frames by pointer identity; nil
// (the parameter frame) is 0.
func (c *Context) frameID(f *cnf.Frame) int {
	if f == nil {
		return 0
	}
	if id, ok := c.fids[f]; ok {
		return id
	}
	c.nextFid++
	c.fids[f] = c.nextFid
	return c.nextFid
}

// Lit compiles a (possibly mixed finite/real) boolean expression.
func (c *Context) Lit(e *expr.Expr, cur, next *cnf.Frame) sat.Lit {
	return c.Enc.Lit(e, cur, next)
}

// Assert adds a hard constraint.
func (c *Context) Assert(e *expr.Expr, cur, next *cnf.Frame) {
	c.Sat.AddClause(c.Lit(e, cur, next))
}

// extern intercepts comparisons with real-typed operands.
func (c *Context) extern(e *expr.Expr, cur, next *cnf.Frame) (sat.Lit, bool) {
	switch e.Op {
	case expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe:
		if e.Args[0].Type().Kind != expr.KindReal && e.Args[1].Type().Kind != expr.KindReal {
			return 0, false
		}
	default:
		return 0, false
	}
	a := c.lin(e.Args[0], cur, next)
	b := c.lin(e.Args[1], cur, next)
	diff := a.add(b, -1) // a - b
	switch e.Op {
	case expr.OpLe:
		return c.atomLit(diff, false), true
	case expr.OpLt:
		return c.atomLit(diff, true), true
	case expr.OpGe:
		return c.atomLit(diff.scale(big.NewRat(-1, 1)), false), true
	case expr.OpGt:
		return c.atomLit(diff.scale(big.NewRat(-1, 1)), true), true
	case expr.OpEq:
		le := c.atomLit(diff, false)
		ge := c.atomLit(diff.scale(big.NewRat(-1, 1)), false)
		return c.Enc.AndLits(le, ge), true
	case expr.OpNe:
		lt := c.atomLit(diff, true)
		gt := c.atomLit(diff.scale(big.NewRat(-1, 1)), true)
		return c.Enc.OrLits(lt, gt), true
	}
	return 0, false
}

// atomLit returns the literal for the atom lin ⋈ 0 (⋈ is < when
// strict, ≤ otherwise), normalizing and deduplicating.
func (c *Context) atomLit(lin linExpr, strict bool) sat.Lit {
	if lin.isConst() {
		s := lin.konst.Sign()
		if s < 0 || (s == 0 && !strict) {
			return c.Enc.True()
		}
		return c.Enc.False()
	}
	// Canonical form: divide by |coefficient of smallest var id|.
	ids := make([]int, 0, len(lin.coeffs))
	for v := range lin.coeffs {
		ids = append(ids, v)
	}
	sort.Ints(ids)
	lead := new(big.Rat).Abs(lin.coeffs[ids[0]])
	norm := lin.scale(new(big.Rat).Inv(lead))
	var b strings.Builder
	for _, v := range ids {
		fmt.Fprintf(&b, "%d:%s;", v, norm.coeffs[v].RatString())
	}
	fmt.Fprintf(&b, "|%s|%v", norm.konst.RatString(), strict)
	key := b.String()
	if idx, ok := c.atomKey[key]; ok {
		return c.atoms[idx].lit
	}
	lit := sat.Pos(c.Sat.NewVar())
	c.atomKey[key] = len(c.atoms)
	c.atoms = append(c.atoms, atom{lin: norm, strict: strict, lit: lit})
	return lit
}

// lin compiles a numeric expression into a linear form over theory
// variables. Only linear real arithmetic is accepted; nonlinear
// products are rejected with a descriptive panic (verdict models keep
// latency-curve slopes concrete for exactly this reason — see
// DESIGN.md).
func (c *Context) lin(e *expr.Expr, cur, next *cnf.Frame) linExpr {
	switch e.Op {
	case expr.OpConst:
		switch e.Val.Kind {
		case expr.KindInt:
			return constLin(new(big.Rat).SetInt64(e.Val.I))
		case expr.KindReal:
			return constLin(new(big.Rat).Set(e.Val.R))
		}
		panic(fmt.Sprintf("smt: non-numeric constant %s in arithmetic context", e))
	case expr.OpVar, expr.OpNext:
		if e.V.T.Kind != expr.KindReal {
			panic(fmt.Sprintf("smt: finite variable %s mixed into real arithmetic; model it as real instead", e.V.Name))
		}
		f := cur
		if e.Op == expr.OpNext {
			f = next
		}
		if e.V.Param {
			f = nil // parameters live in the global frame
		}
		tv := c.TheoryVar(e.V, f)
		return linExpr{coeffs: map[int]*big.Rat{tv: big.NewRat(1, 1)}, konst: new(big.Rat)}
	case expr.OpAdd:
		acc := c.lin(e.Args[0], cur, next)
		for _, a := range e.Args[1:] {
			acc = acc.add(c.lin(a, cur, next), 1)
		}
		return acc
	case expr.OpSub:
		return c.lin(e.Args[0], cur, next).add(c.lin(e.Args[1], cur, next), -1)
	case expr.OpNeg:
		return c.lin(e.Args[0], cur, next).scale(big.NewRat(-1, 1))
	case expr.OpMul:
		acc := c.lin(e.Args[0], cur, next)
		for _, a := range e.Args[1:] {
			o := c.lin(a, cur, next)
			switch {
			case o.isConst():
				acc = acc.scale(o.konst)
			case acc.isConst():
				acc = o.scale(acc.konst)
			default:
				panic(fmt.Sprintf("smt: nonlinear product in %s; QF_LRA requires one constant factor", e))
			}
		}
		return acc
	case expr.OpDiv:
		den := c.lin(e.Args[1], cur, next)
		if !den.isConst() || den.konst.Sign() == 0 {
			panic(fmt.Sprintf("smt: division by non-constant or zero in %s", e))
		}
		return c.lin(e.Args[0], cur, next).scale(new(big.Rat).Inv(den.konst))
	case expr.OpIte:
		key := iteKey{e, c.frameID(cur), c.frameID(next)}
		if l, ok := c.iteMemo[key]; ok {
			return l
		}
		cond := c.Lit(e.Args[0], cur, next)
		thn := c.lin(e.Args[1], cur, next)
		els := c.lin(e.Args[2], cur, next)
		// Fresh theory var y with (cond -> y = thn) and (!cond -> y = els).
		c.iteCount++
		y := len(c.tvars)
		c.tvars = append(c.tvars, fmt.Sprintf("$ite%d", c.iteCount))
		yl := linExpr{coeffs: map[int]*big.Rat{y: big.NewRat(1, 1)}, konst: new(big.Rat)}
		c.guardEq(cond, yl, thn)
		c.guardEq(cond.Not(), yl, els)
		c.iteMemo[key] = yl
		return yl
	}
	panic(fmt.Sprintf("smt: cannot linearize op %v in %s", e.Op, e))
}

// guardEq asserts g -> (a = b) as two guarded atoms.
func (c *Context) guardEq(g sat.Lit, a, b linExpr) {
	diff := a.add(b, -1)
	le := c.atomLit(diff, false)
	ge := c.atomLit(diff.scale(big.NewRat(-1, 1)), false)
	c.Sat.AddClause(g.Not(), le)
	c.Sat.AddClause(g.Not(), ge)
}

// Solve runs the lazy DPLL(T) loop under the given assumptions.
func (c *Context) Solve(assumptions ...sat.Lit) sat.Status {
	maxIter := c.MaxTheoryIterations
	if maxIter == 0 {
		maxIter = 1_000_000
	}
	for iter := 0; iter < maxIter; iter++ {
		st := c.Sat.Solve(assumptions...)
		if st != sat.Sat {
			return st
		}
		if c.checkTheory() {
			return sat.Sat
		}
	}
	return sat.Unknown
}

// checkTheory validates the current boolean model against LRA. On
// success the theory model is stored and true returned; otherwise a
// blocking clause is added and false returned.
func (c *Context) checkTheory() bool {
	sx := NewSimplex()
	// Theory variables map 1:1 onto the first len(c.tvars) simplex vars.
	for range c.tvars {
		sx.NewVar()
	}
	slackOf := make(map[string]int)
	var asserted []sat.Lit // lit per tag index
	var confl Conflict
	for i := range c.atoms {
		at := &c.atoms[i]
		val := c.Sat.ValueLit(at.lit)
		if val == sat.Undef {
			continue
		}
		// slack = Σ coeffs·x; bound with ±konst.
		ids := make([]int, 0, len(at.lin.coeffs))
		for v := range at.lin.coeffs {
			ids = append(ids, v)
		}
		sort.Ints(ids)
		var kb strings.Builder
		for _, v := range ids {
			fmt.Fprintf(&kb, "%d:%s;", v, at.lin.coeffs[v].RatString())
		}
		sk := kb.String()
		slack, ok := slackOf[sk]
		if !ok {
			slack = sx.DefineSlack(at.lin.coeffs)
			slackOf[sk] = slack
		}
		tag := len(asserted)
		bnd := new(big.Rat).Neg(at.lin.konst) // Σc·x ⋈ -konst
		if val == sat.TrueV {
			asserted = append(asserted, at.lit)
			if at.strict {
				confl = sx.AssertUpper(slack, DStrictBelow(bnd), tag)
			} else {
				confl = sx.AssertUpper(slack, DRat(bnd), tag)
			}
		} else {
			asserted = append(asserted, at.lit.Not())
			// ¬(t ≤ k) is t > k; ¬(t < k) is t ≥ k.
			if at.strict {
				confl = sx.AssertLower(slack, DRat(bnd), tag)
			} else {
				confl = sx.AssertLower(slack, DStrictAbove(bnd), tag)
			}
		}
		if confl != nil {
			break
		}
	}
	if confl == nil {
		confl = sx.Check()
	}
	if confl == nil {
		c.model = sx.Model()[:len(c.tvars)]
		return true
	}
	c.TheoryConflicts++
	var clause []sat.Lit
	if c.BlockFullAssignment {
		seen := make(map[sat.Lit]bool)
		for _, l := range asserted {
			if !seen[l] {
				seen[l] = true
				clause = append(clause, l.Not())
			}
		}
	} else {
		seen := make(map[int]bool)
		for _, tag := range confl {
			if tag < 0 || tag >= len(asserted) || seen[tag] {
				continue
			}
			seen[tag] = true
			clause = append(clause, asserted[tag].Not())
		}
	}
	c.Sat.AddClause(clause...)
	return false
}

// RealValue returns the theory model value of a real ts variable in a
// frame (nil frame = parameter). Valid after a Sat result from Solve.
func (c *Context) RealValue(v *expr.Var, frame *cnf.Frame) *big.Rat {
	f := frame
	if v.Param {
		f = nil
	}
	id, ok := c.varOf[tvarKey{v, c.frameID(f)}]
	if !ok || c.model == nil || id >= len(c.model) {
		return new(big.Rat)
	}
	return c.model[id]
}

// NumAtoms returns the number of distinct theory atoms created.
func (c *Context) NumAtoms() int { return len(c.atoms) }
