// Package smt implements a lazy SMT solver for quantifier-free linear
// real arithmetic (QF_LRA).
//
// The boolean skeleton of a formula lives in the CDCL SAT solver
// (package sat) via the CNF compiler (package cnf); real-valued
// comparisons become theory atoms attached to fresh literals. After
// each boolean model, the asserted atoms are checked for consistency
// with an exact-arithmetic general simplex (Dutertre–de Moura); theory
// conflicts come back as blocking clauses. This is the engine behind
// the paper's second case study, where input traffic and external
// traffic are real-valued parameters of the load-balancer model.
package smt

import (
	"fmt"
	"math/big"
)

// Delta is a delta-rational r + d·δ for an infinitesimal positive δ —
// the standard device for handling strict inequalities in simplex.
// Values are immutable.
type Delta struct {
	R *big.Rat // standard part
	D *big.Rat // infinitesimal coefficient
}

var ratZero = new(big.Rat)

// DZero is the delta-rational 0.
func DZero() Delta { return Delta{R: ratZero, D: ratZero} }

// DRat wraps a rational with no infinitesimal part.
func DRat(r *big.Rat) Delta { return Delta{R: r, D: ratZero} }

// DStrictBelow returns r - δ (used for strict upper bounds t < r).
func DStrictBelow(r *big.Rat) Delta { return Delta{R: r, D: big.NewRat(-1, 1)} }

// DStrictAbove returns r + δ (used for strict lower bounds t > r).
func DStrictAbove(r *big.Rat) Delta { return Delta{R: r, D: big.NewRat(1, 1)} }

// Cmp compares lexicographically: standard part first, then the
// infinitesimal coefficient.
func (a Delta) Cmp(b Delta) int {
	if c := a.R.Cmp(b.R); c != 0 {
		return c
	}
	return a.D.Cmp(b.D)
}

// Add returns a + b.
func (a Delta) Add(b Delta) Delta {
	return Delta{R: new(big.Rat).Add(a.R, b.R), D: new(big.Rat).Add(a.D, b.D)}
}

// Sub returns a - b.
func (a Delta) Sub(b Delta) Delta {
	return Delta{R: new(big.Rat).Sub(a.R, b.R), D: new(big.Rat).Sub(a.D, b.D)}
}

// Scale returns k·a.
func (a Delta) Scale(k *big.Rat) Delta {
	return Delta{R: new(big.Rat).Mul(k, a.R), D: new(big.Rat).Mul(k, a.D)}
}

// Quo returns a / k; k must be nonzero.
func (a Delta) Quo(k *big.Rat) Delta {
	inv := new(big.Rat).Inv(k)
	return a.Scale(inv)
}

// Concretize evaluates the delta-rational at δ = eps.
func (a Delta) Concretize(eps *big.Rat) *big.Rat {
	return new(big.Rat).Add(a.R, new(big.Rat).Mul(a.D, eps))
}

func (a Delta) String() string {
	if a.D.Sign() == 0 {
		return a.R.RatString()
	}
	return fmt.Sprintf("%s%+sδ", a.R.RatString(), a.D.RatString())
}
