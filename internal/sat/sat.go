// Package sat implements an incremental CDCL SAT solver.
//
// The solver is the workhorse under verdict's bounded model checker,
// k-induction engine, lazy SMT loop, and enumeration-based parameter
// synthesis. It implements the standard modern architecture: two
// watched literals, first-UIP conflict analysis with clause learning,
// EVSIDS branching with phase saving, Luby restarts, learnt-clause
// database reduction by LBD, and solving under assumptions with final
// conflict (unsat core) extraction.
package sat

import (
	"fmt"
	"sort"
)

// Lit is a literal: variable index shifted left once, low bit set for
// negative polarity. Variables are dense ints starting at 0, allocated
// with Solver.NewVar.
type Lit int32

// MkLit builds a literal for variable v, negated if neg.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Pos returns the positive literal of variable v.
func Pos(v int) Lit { return Lit(v << 1) }

// Neg returns the negative literal of variable v.
func Neg(v int) Lit { return Lit(v<<1) | 1 }

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether the literal is negative.
func (l Lit) Sign() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Sign() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// LBool is a three-valued truth value.
type LBool int8

// LBool values.
const (
	Undef LBool = iota
	TrueV
	FalseV
)

func (b LBool) String() string {
	switch b {
	case TrueV:
		return "true"
	case FalseV:
		return "false"
	}
	return "undef"
}

// Status is the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

const noReason = -1

type clause struct {
	lits     []Lit
	activity float64
	lbd      int
	learnt   bool
	deleted  bool
}

type watcher struct {
	cref    int // index into Solver.clauses
	blocker Lit
}

// Solver is an incremental CDCL SAT solver. The zero value is not
// usable; call New.
type Solver struct {
	clauses []*clause
	watches [][]watcher // indexed by Lit

	assign   []LBool // indexed by var; value under current trail
	level    []int   // decision level at which var was assigned
	reason   []int   // clause ref that implied var, or noReason
	trail    []Lit
	trailLim []int // trail index at each decision level

	activity []float64
	varInc   float64
	order    *varHeap
	phase    []bool // saved phase per var
	polarity []bool // user-suggested initial phase

	seen     []bool
	qhead    int
	ok       bool  // false once a top-level conflict proves UNSAT
	conflict []Lit // final conflict clause over assumptions (negated)

	// Statistics, exported for the benchmark harness; Stats() returns
	// them as one snapshot.
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Learnts      int64
	Solves       int64

	// Budget: abort Solve with Unknown after this many conflicts
	// (0 = unlimited). Used to implement verification timeouts.
	ConflictBudget int64

	// Interrupt, when non-nil, is polled between restarts; returning
	// true aborts Solve with Unknown. Used for wall-clock timeouts.
	Interrupt func() bool

	// stop records why the last Solve returned Unknown; see StopCause.
	stop StopCause

	numLearnt  int
	clauseInc  float64
	maxLearnt  float64
	lubyBase   int64
	restartCnt int
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{
		ok:        true,
		varInc:    1.0,
		clauseInc: 1.0,
		maxLearnt: 4000,
		lubyBase:  100,
		order:     &varHeap{},
	}
}

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, Undef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, noReason)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.polarity = append(s.polarity, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v, s.activity)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assign) }

// SetPhase suggests the first decision polarity for variable v.
func (s *Solver) SetPhase(v int, value bool) { s.phase[v] = value; s.polarity[v] = value }

func (s *Solver) litValue(l Lit) LBool {
	v := s.assign[l.Var()]
	if v == Undef {
		return Undef
	}
	if l.Sign() {
		if v == TrueV {
			return FalseV
		}
		return TrueV
	}
	return v
}

// AddClause adds a clause. It returns false if the solver is already
// in an UNSAT state or the clause makes it so at the top level.
// Clauses may only be added when no Solve is in progress; the solver
// backtracks to level 0 automatically.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
	// Sort and simplify: drop duplicates and false lits, detect
	// tautologies and satisfied clauses.
	ls := append([]Lit(nil), lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = -1
	for _, l := range ls {
		if int(l.Var()) >= len(s.assign) {
			panic(fmt.Sprintf("sat: literal %v references unallocated variable", l))
		}
		if l == prev {
			continue
		}
		if l == prev.Not() && prev != -1 {
			return true // tautology
		}
		switch s.litValue(l) {
		case TrueV:
			return true // satisfied at top level
		case FalseV:
			continue // drop
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], noReason)
		if s.propagate() != noReason {
			s.ok = false
			return false
		}
		return true
	}
	s.attachClause(&clause{lits: append([]Lit(nil), out...)})
	return true
}

func (s *Solver) attachClause(c *clause) int {
	cref := len(s.clauses)
	s.clauses = append(s.clauses, c)
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{cref, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{cref, c.lits[0]})
	if c.learnt {
		s.numLearnt++
	}
	return cref
}

func (s *Solver) uncheckedEnqueue(l Lit, from int) {
	v := l.Var()
	if l.Sign() {
		s.assign[v] = FalseV
	} else {
		s.assign[v] = TrueV
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[lvl]; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v] == TrueV
		s.assign[v] = Undef
		s.reason[v] = noReason
		if !s.order.inHeap(v) {
			s.order.push(v, s.activity)
		}
	}
	s.trail = s.trail[:s.trailLim[lvl]]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// propagate performs unit propagation; it returns the conflicting
// clause ref or noReason.
func (s *Solver) propagate() int {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		ws := s.watches[p]
		j := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.litValue(w.blocker) == TrueV {
				ws[j] = w
				j++
				continue
			}
			c := s.clauses[w.cref]
			if c.deleted {
				continue // drop watcher of deleted clause
			}
			// Ensure the false literal is lits[1].
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.litValue(first) == TrueV {
				ws[j] = watcher{w.cref, first}
				j++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != FalseV {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{w.cref, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[j] = watcher{w.cref, first}
			j++
			if s.litValue(first) == FalseV {
				// Conflict: copy remaining watchers and bail.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[p] = ws[:j]
				s.qhead = len(s.trail)
				return w.cref
			}
			s.uncheckedEnqueue(first, w.cref)
		}
		s.watches[p] = ws[:j]
	}
	return noReason
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl int) ([]Lit, int) {
	learnt := []Lit{0} // placeholder for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	var toClear []int // every var marked seen, cleared on exit

	for {
		c := s.clauses[confl]
		if c.learnt {
			s.bumpClause(c)
		}
		start := 0
		if p != -1 {
			start = 1
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			toClear = append(toClear, v)
			s.bumpVar(v)
			if s.level[v] >= s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find next literal to expand.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()

	// Minimize: drop literals implied by the rest of the clause
	// (cheap local check against direct reasons).
	j := 1
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].Var()
		r := s.reason[v]
		if r == noReason {
			learnt[j] = learnt[i]
			j++
			continue
		}
		redundant := true
		for _, q := range s.clauses[r].lits {
			qv := q.Var()
			if qv == v {
				continue
			}
			if !s.seen[qv] && s.level[qv] != 0 {
				redundant = false
				break
			}
		}
		if !redundant {
			learnt[j] = learnt[i]
			j++
		}
	}
	learnt = learnt[:j]

	// Compute backtrack level and move its literal to slot 1.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}
	for _, v := range toClear {
		s.seen[v] = false
	}
	return learnt, btLevel
}

func (s *Solver) lbd(lits []Lit) int {
	levels := make(map[int]bool, len(lits))
	for _, l := range lits {
		levels[s.level[l.Var()]] = true
	}
	return len(levels)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v, s.activity)
}

func (s *Solver) bumpClause(c *clause) {
	c.activity += s.clauseInc
	if c.activity > 1e20 {
		for _, cl := range s.clauses {
			if cl.learnt {
				cl.activity *= 1e-20
			}
		}
		s.clauseInc *= 1e-20
	}
}

func (s *Solver) decayActivities() {
	s.varInc /= 0.95
	s.clauseInc /= 0.999
}

// reduceDB removes roughly half of the learnt clauses, preferring high
// LBD and low activity; reason clauses and binary clauses survive.
func (s *Solver) reduceDB() {
	var learnts []*clause
	locked := make(map[*clause]bool)
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r != noReason {
			locked[s.clauses[r]] = true
		}
	}
	for _, c := range s.clauses {
		if c.learnt && !c.deleted && len(c.lits) > 2 && !locked[c] {
			learnts = append(learnts, c)
		}
	}
	sort.Slice(learnts, func(i, j int) bool {
		if learnts[i].lbd != learnts[j].lbd {
			return learnts[i].lbd > learnts[j].lbd
		}
		return learnts[i].activity < learnts[j].activity
	})
	for _, c := range learnts[:len(learnts)/2] {
		c.deleted = true
		s.numLearnt--
	}
}

// luby returns the x-th element of the Luby restart sequence
// (1,1,2,1,1,2,4,...), 0-indexed.
func luby(x int64) int64 {
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return 1 << seq
}

// Solve determines satisfiability under the given assumptions. On Sat,
// Value reports the model; on Unsat, Core reports the subset of
// assumptions in the final conflict. Unknown is returned only when the
// conflict budget is exhausted. Solve is SolveAssuming under its
// historical name; both are fully incremental.
func (s *Solver) Solve(assumptions ...Lit) Status {
	return s.SolveAssuming(assumptions...)
}

// SolveAssuming is the incremental solving entry point: it decides the
// current clause set under the given assumptions, which hold only for
// this call. Everything the search discovers persists for the next
// call — learned clauses stay in the database, literal activities and
// saved phases keep their values, and clauses added between calls
// simply join the problem — so a sequence of related queries (BMC
// depths k, k+1, ..., induction steps, loop-literal probes) shares one
// growing clause database instead of restarting from nothing. Each
// call gets its own conflict budget and restart schedule.
func (s *Solver) SolveAssuming(assumptions ...Lit) Status {
	s.Solves++
	if !s.ok {
		s.conflict = nil
		return Unsat
	}
	s.cancelUntil(0)
	s.conflict = nil
	s.stop = StopNone
	startConflicts := s.Conflicts
	restart := int64(0)

	for {
		budget := s.lubyBase * luby(restart)
		st := s.search(assumptions, budget)
		if st != Unknown {
			return st
		}
		if s.ConflictBudget > 0 && s.Conflicts-startConflicts >= s.ConflictBudget {
			s.cancelUntil(0)
			s.stop = StopBudget
			return Unknown
		}
		if s.Interrupt != nil && s.Interrupt() {
			s.cancelUntil(0)
			s.stop = StopInterrupt
			return Unknown
		}
		restart++
		s.restartCnt++
	}
}

// StopCause explains an Unknown verdict from Solve: the conflict
// budget ran out, or the Interrupt poll fired (wall-clock deadline or
// cooperative cancellation). It lets engines label their degraded
// results honestly instead of guessing "timeout".
type StopCause int

const (
	// StopNone: the last Solve was conclusive.
	StopNone StopCause = iota
	// StopBudget: ConflictBudget was exhausted.
	StopBudget
	// StopInterrupt: the Interrupt poll fired.
	StopInterrupt
)

// LastStop reports why the most recent Solve returned Unknown
// (StopNone when it was conclusive).
func (s *Solver) LastStop() StopCause { return s.stop }

// search runs CDCL until a result, a restart (after maxConfl
// conflicts; returns Unknown), or budget exhaustion.
func (s *Solver) search(assumptions []Lit, maxConfl int64) Status {
	conflicts := int64(0)
	for {
		confl := s.propagate()
		if confl != noReason {
			s.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			if s.decisionLevel() <= len(assumptions) {
				// Conflict among assumptions: build final conflict.
				s.analyzeFinalFromConflict(confl, assumptions)
				s.cancelUntil(0)
				return Unsat
			}
			// Backjump freely, possibly below assumption levels: the
			// decision loop re-establishes assumptions on the way up.
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], noReason)
			} else {
				c := &clause{lits: append([]Lit(nil), learnt...), learnt: true, lbd: s.lbd(learnt)}
				cref := s.attachClause(c)
				s.bumpClause(c)
				s.Learnts++
				s.uncheckedEnqueue(learnt[0], cref)
			}
			s.decayActivities()
			if float64(s.numLearnt) > s.maxLearnt {
				s.reduceDB()
				s.maxLearnt *= 1.3
			}
			continue
		}

		if conflicts >= maxConfl {
			s.cancelUntil(0)
			return Unknown
		}

		// Assume the next assumption, or decide.
		var next Lit = -1
		for s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.litValue(a) {
			case TrueV:
				s.trailLim = append(s.trailLim, len(s.trail)) // dummy level
				continue
			case FalseV:
				s.analyzeFinal(a.Not(), assumptions)
				s.cancelUntil(0)
				return Unsat
			default:
				next = a
			}
			break
		}
		if next == -1 {
			next = s.pickBranchLit()
			if next == -1 {
				return Sat // all variables assigned
			}
			s.Decisions++
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, noReason)
	}
}

func (s *Solver) pickBranchLit() Lit {
	for {
		v, ok := s.order.pop(s.activity)
		if !ok {
			return -1
		}
		if s.assign[v] == Undef {
			return MkLit(v, !s.phase[v])
		}
	}
}

// analyzeFinal computes the set of assumption literals implying the
// falsified literal p (p is the complement of a failed assumption).
func (s *Solver) analyzeFinal(p Lit, assumptions []Lit) {
	s.conflict = []Lit{p}
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if s.reason[v] == noReason {
			if s.level[v] > 0 && s.trail[i] != p.Not() {
				s.conflict = append(s.conflict, s.trail[i].Not())
			}
		} else {
			for _, q := range s.clauses[s.reason[v]].lits {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.Var()] = false
	// Keep only actual assumptions (dedup).
	asm := make(map[Lit]bool, len(assumptions))
	for _, a := range assumptions {
		asm[a] = true
	}
	out := s.conflict[:0]
	seenL := make(map[Lit]bool)
	for _, l := range s.conflict {
		if asm[l.Not()] && !seenL[l] {
			seenL[l] = true
			out = append(out, l)
		}
	}
	s.conflict = out
}

func (s *Solver) analyzeFinalFromConflict(confl int, assumptions []Lit) {
	// Mark all literals of the conflicting clause and walk back.
	s.conflict = nil
	for _, q := range s.clauses[confl].lits {
		if s.level[q.Var()] > 0 {
			s.seen[q.Var()] = true
		}
	}
	for i := len(s.trail) - 1; i >= 0; i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if s.reason[v] == noReason {
			if s.level[v] > 0 {
				s.conflict = append(s.conflict, s.trail[i].Not())
			}
		} else {
			for _, q := range s.clauses[s.reason[v]].lits {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	asm := make(map[Lit]bool, len(assumptions))
	for _, a := range assumptions {
		asm[a] = true
	}
	out := s.conflict[:0]
	seenL := make(map[Lit]bool)
	for _, l := range s.conflict {
		if asm[l.Not()] && !seenL[l] {
			seenL[l] = true
			out = append(out, l)
		}
	}
	s.conflict = out
}

// Value returns the model value of variable v after a Sat result.
func (s *Solver) Value(v int) LBool { return s.assign[v] }

// ValueLit returns the model value of a literal after a Sat result.
func (s *Solver) ValueLit(l Lit) LBool { return s.litValue(l) }

// Core returns the failed assumptions after an Unsat result: a subset
// of the assumptions whose conjunction is inconsistent with the
// clauses. Literals appear negated relative to how they were assumed
// in MiniSat; here we return them as the assumed literals themselves.
func (s *Solver) Core() []Lit {
	out := make([]Lit, len(s.conflict))
	for i, l := range s.conflict {
		out[i] = l.Not()
	}
	return out
}

// Okay reports whether the solver is still consistent at level 0.
func (s *Solver) Okay() bool { return s.ok }

// Stats is a snapshot of the solver's search counters.
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Learnts      int64
	Restarts     int64
	// Solves counts Solve/SolveAssuming calls answered by this solver;
	// values above 1 mean the clause database and heuristic state were
	// reused incrementally.
	Solves  int64
	Vars    int
	Clauses int
}

// Stats snapshots the search counters. The caller owns the copy; the
// solver keeps counting. Snapshots must be taken from the goroutine
// driving Solve — the counters are not synchronized.
func (s *Solver) Stats() Stats {
	return Stats{
		Conflicts:    s.Conflicts,
		Decisions:    s.Decisions,
		Propagations: s.Propagations,
		Learnts:      s.Learnts,
		Restarts:     int64(s.restartCnt),
		Solves:       s.Solves,
		Vars:         s.NumVars(),
		Clauses:      s.NumClauses(),
	}
}

// NumClauses returns the number of live problem clauses (excluding
// learnt ones).
func (s *Solver) NumClauses() int {
	n := 0
	for _, c := range s.clauses {
		if !c.learnt && !c.deleted {
			n++
		}
	}
	return n
}

// --- activity-ordered heap ---

type varHeap struct {
	heap []int
	pos  []int // var -> index in heap, -1 if absent
}

func (h *varHeap) inHeap(v int) bool { return v < len(h.pos) && h.pos[v] >= 0 }

func (h *varHeap) push(v int, act []float64) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = len(h.heap) - 1
	h.up(h.pos[v], act)
}

func (h *varHeap) pop(act []float64) (int, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.pos[last] = 0
		h.down(0, act)
	}
	return v, true
}

func (h *varHeap) update(v int, act []float64) {
	if h.inHeap(v) {
		h.up(h.pos[v], act)
	}
}

func (h *varHeap) up(i int, act []float64) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if act[h.heap[p]] >= act[v] {
			break
		}
		h.heap[i] = h.heap[p]
		h.pos[h.heap[p]] = i
		i = p
	}
	h.heap[i] = v
	h.pos[v] = i
}

func (h *varHeap) down(i int, act []float64) {
	v := h.heap[i]
	for {
		c := 2*i + 1
		if c >= len(h.heap) {
			break
		}
		if c+1 < len(h.heap) && act[h.heap[c+1]] > act[h.heap[c]] {
			c++
		}
		if act[h.heap[c]] <= act[v] {
			break
		}
		h.heap[i] = h.heap[c]
		h.pos[h.heap[c]] = i
		i = c
	}
	h.heap[i] = v
	h.pos[v] = i
}
