package sat

import "testing"

// Tests for the incremental solving contract of SolveAssuming: the
// learned-clause database, literal activities, and saved phases
// survive across calls; assumptions hold for exactly one call; and
// clauses added between calls join the problem seamlessly.

// addPigeonhole asserts the pigeonhole principle PHP(holes+1, holes)
// guarded by a selector literal: every clause gets `guard` added, so
// the (unsatisfiable) instance is active only under the assumption
// guard.Not(). Returns the pigeon/hole variables.
func addPigeonhole(s *Solver, holes int, guard Lit) [][]int {
	pigeons := holes + 1
	p := make([][]int, pigeons)
	for i := range p {
		p[i] = make([]int, holes)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i < pigeons; i++ {
		c := []Lit{guard}
		for j := 0; j < holes; j++ {
			c = append(c, Pos(p[i][j]))
		}
		s.AddClause(c...)
	}
	for j := 0; j < holes; j++ {
		for i := 0; i < pigeons; i++ {
			for k := i + 1; k < pigeons; k++ {
				s.AddClause(guard, Neg(p[i][j]), Neg(p[k][j]))
			}
		}
	}
	return p
}

// TestSolveAssumingRetainsState checks that solver state genuinely
// persists across SolveAssuming calls: learned clauses stay in the
// database, activities keep their values, and a repeat of the same
// hard query is answered with at most the original search effort.
func TestSolveAssumingRetainsState(t *testing.T) {
	s := New()
	sel := s.NewVar()
	addPigeonhole(s, 4, Pos(sel))

	if st := s.SolveAssuming(Neg(sel)); st != Unsat {
		t.Fatalf("guarded pigeonhole under activation = %v, want unsat", st)
	}
	c1 := s.Conflicts
	if c1 == 0 {
		t.Fatal("pigeonhole refutation recorded no conflicts")
	}
	if s.Learnts == 0 {
		t.Fatal("pigeonhole refutation learned no clauses")
	}
	learnt1 := s.Learnts
	// Literal activity must survive the call (EVSIDS state is part of
	// the retained heuristics).
	bumped := false
	for _, a := range s.activity {
		if a > 0 {
			bumped = true
			break
		}
	}
	if !bumped {
		t.Fatal("no literal activity left after a conflicting solve")
	}
	core := s.Core()
	if len(core) != 1 || core[0] != Neg(sel) {
		t.Fatalf("Core() = %v, want [%v]", core, Neg(sel))
	}

	// The identical query again: the retained clause database must not
	// make it harder, and typically makes it much cheaper.
	if st := s.SolveAssuming(Neg(sel)); st != Unsat {
		t.Fatalf("repeat query = %v, want unsat", st)
	}
	if c2 := s.Conflicts - c1; c2 > c1 {
		t.Errorf("repeat of an identical unsat query took more conflicts (%d) than the first (%d); clause database not retained?", c2, c1)
	}
	if s.Learnts < learnt1 {
		t.Errorf("learned-clause counter went backwards: %d then %d", learnt1, s.Learnts)
	}

	// The assumption held for its calls only: with the guard released
	// the instance is trivially satisfiable.
	if st := s.SolveAssuming(); st != Sat {
		t.Fatalf("unguarded solve = %v, want sat", st)
	}
	if got := s.Stats().Solves; got != 3 {
		t.Errorf("Stats().Solves = %d, want 3", got)
	}
}

// TestSolveAssumingInterleavedClauses drives the MiniSat-style
// incremental pattern: alternate clause additions with assumption
// queries and cross-check every verdict against brute force.
func TestSolveAssumingInterleavedClauses(t *testing.T) {
	s := New()
	const n = 4
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	var sofar [][]Lit
	add := func(c ...Lit) {
		sofar = append(sofar, c)
		if !s.AddClause(c...) {
			t.Fatalf("AddClause(%v) reported top-level unsat", c)
		}
	}
	check := func(assumps ...Lit) {
		t.Helper()
		st := s.SolveAssuming(assumps...)
		all := append([][]Lit{}, sofar...)
		for _, a := range assumps {
			all = append(all, []Lit{a})
		}
		want := bruteForce(n, all)
		if (st == Sat) != want {
			t.Fatalf("SolveAssuming(%v) = %v, brute force says sat=%v (clauses %v)", assumps, st, want, sofar)
		}
		if st == Sat {
			for _, a := range assumps {
				if s.ValueLit(a) != TrueV {
					t.Fatalf("model violates assumption %v", a)
				}
			}
		}
	}

	add(Pos(0), Pos(1))
	check(Neg(0))
	add(Neg(1), Pos(2))
	check(Neg(0), Neg(2)) // forces 1 and ¬1: unsat under assumptions
	check(Pos(0))
	add(Neg(2), Pos(3))
	check(Neg(0), Neg(3))
	check() // still satisfiable with no assumptions
	if got := s.Stats().Solves; got != 5 {
		t.Errorf("Stats().Solves = %d, want 5", got)
	}
}

// TestSolveDelegatesToSolveAssuming pins Solve == SolveAssuming.
func TestSolveDelegatesToSolveAssuming(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(Pos(v))
	if st := s.Solve(Neg(v)); st != Unsat {
		t.Fatalf("Solve under contradicting assumption = %v, want unsat", st)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("Solve = %v, want sat", st)
	}
	if got := s.Stats().Solves; got != 2 {
		t.Errorf("Stats().Solves = %d, want 2 (Solve must count as SolveAssuming)", got)
	}
}
