package sat

import (
	"math/rand"
	"testing"
)

// Differential fuzzing of the CDCL solver against a brute-force
// enumerator on small CNFs (≤ 12 variables, so the enumerator can
// decide by trying all ≤ 4096 assignments). Two entry points share
// the oracle: FuzzSolver explores byte-encoded CNFs under `go test
// -fuzz`, and TestSolverVsBruteForce replays a seeded random corpus on
// every plain `go test` run.

const fuzzMaxVars = 12

// decodeCNF maps arbitrary bytes onto a CNF: the first byte fixes the
// variable count, zero bytes end clauses, and every other byte is one
// literal. Any input decodes to something, so the fuzzer wastes no
// executions on parse failures.
func decodeCNF(data []byte) (nVars int, clauses [][]Lit) {
	if len(data) == 0 {
		return 1, nil
	}
	nVars = 1 + int(data[0])%fuzzMaxVars
	var cur []Lit
	for _, b := range data[1:] {
		if b == 0 {
			if len(cur) > 0 {
				clauses = append(clauses, cur)
				cur = nil
			}
			continue
		}
		if len(cur) < 8 {
			cur = append(cur, MkLit(int(b>>1)%nVars, b&1 == 1))
		}
		if len(clauses) == 64 {
			return nVars, clauses
		}
	}
	if len(cur) > 0 {
		clauses = append(clauses, cur)
	}
	return nVars, clauses
}

// checkCNF runs the solver on the CNF and cross-checks status and
// model against the enumerator.
func checkCNF(t *testing.T, nVars int, clauses [][]Lit) {
	t.Helper()
	s := New()
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	addOK := true
	for _, c := range clauses {
		if !s.AddClause(c...) {
			addOK = false
			break
		}
	}
	wantSat := bruteForce(nVars, clauses) // enumeration oracle from sat_test.go
	if !addOK {
		// AddClause detected top-level unsatisfiability early; the
		// enumerator must agree.
		if wantSat {
			t.Fatalf("AddClause says unsat, brute force says sat\nnVars=%d clauses=%v", nVars, clauses)
		}
		return
	}
	st := s.Solve()
	if st == Unknown {
		t.Fatalf("solver returned unknown without a budget\nnVars=%d clauses=%v", nVars, clauses)
	}
	if (st == Sat) != wantSat {
		t.Fatalf("solver says %v, brute force says sat=%v\nnVars=%d clauses=%v", st, wantSat, nVars, clauses)
	}
	if st != Sat {
		return
	}
	// The solver's model must actually satisfy every input clause.
	for _, c := range clauses {
		ok := false
		for _, l := range c {
			switch s.ValueLit(l) {
			case TrueV:
				ok = true
			case Undef:
				t.Fatalf("sat model leaves %v unassigned\nnVars=%d clauses=%v", l, nVars, clauses)
			}
			if ok {
				break
			}
		}
		if !ok {
			t.Fatalf("model falsifies clause %v\nnVars=%d clauses=%v", c, nVars, clauses)
		}
	}
}

// checkIncrementalCNF is the differential oracle for SolveAssuming:
// the same CNF is fed to one solver in randomized chunks, with a
// randomized assumption query after every chunk, and each verdict is
// cross-checked against brute-force enumeration of the clause prefix
// plus the assumptions. Models must satisfy clauses and assumptions;
// unsat cores must be subsets of the assumptions that are genuinely
// inconsistent with the prefix. The final assumption-free call must
// agree with a fresh solver on the full CNF.
func checkIncrementalCNF(t *testing.T, nVars int, clauses [][]Lit, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	s := New()
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	randAssumps := func() []Lit {
		a := make([]Lit, 0, 3)
		for i := r.Intn(4); i > 0; i-- {
			a = append(a, MkLit(r.Intn(nVars), r.Intn(2) == 1))
		}
		return a
	}
	// withUnits appends assumptions as unit clauses for the enumerator.
	withUnits := func(prefix [][]Lit, assumps []Lit) [][]Lit {
		all := append([][]Lit{}, prefix...)
		for _, a := range assumps {
			all = append(all, []Lit{a})
		}
		return all
	}
	query := func(prefix [][]Lit, assumps []Lit) {
		t.Helper()
		st := s.SolveAssuming(assumps...)
		if st == Unknown {
			t.Fatalf("SolveAssuming returned unknown without a budget\nprefix=%v assumps=%v", prefix, assumps)
		}
		want := bruteForce(nVars, withUnits(prefix, assumps))
		if (st == Sat) != want {
			t.Fatalf("incremental SolveAssuming(%v) = %v, brute force says sat=%v\nnVars=%d prefix=%v", assumps, st, want, nVars, prefix)
		}
		if st == Sat {
			// The model must satisfy the clauses added so far AND the
			// assumptions of this call.
			for _, a := range assumps {
				if s.ValueLit(a) != TrueV {
					t.Fatalf("model under assumptions violates assumption %v\nprefix=%v", a, prefix)
				}
			}
			for _, c := range prefix {
				ok := false
				for _, l := range c {
					if s.ValueLit(l) == TrueV {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("model under assumptions %v falsifies clause %v\nprefix=%v", assumps, c, prefix)
				}
			}
			return
		}
		// Unsat: the reported core must be assumptions, and must be
		// genuinely inconsistent with the prefix on its own.
		asm := make(map[Lit]bool, len(assumps))
		for _, a := range assumps {
			asm[a] = true
		}
		core := s.Core()
		for _, l := range core {
			if !asm[l] {
				t.Fatalf("core literal %v is not among the assumptions %v\nprefix=%v", l, assumps, prefix)
			}
		}
		if len(assumps) > 0 && bruteForce(nVars, withUnits(prefix, core)) {
			t.Fatalf("core %v of assumptions %v is not actually unsat with the prefix\nprefix=%v", core, assumps, prefix)
		}
	}

	var prefix [][]Lit
	dead := false // AddClause proved top-level unsat
	for len(clauses) > 0 {
		chunk := 1 + r.Intn(len(clauses))
		for _, c := range clauses[:chunk] {
			prefix = append(prefix, c)
			if !dead && !s.AddClause(c...) {
				dead = true
				if bruteForce(nVars, prefix) {
					t.Fatalf("AddClause says top-level unsat, brute force says sat\nprefix=%v", prefix)
				}
			}
		}
		clauses = clauses[chunk:]
		if dead {
			// A dead solver must answer Unsat to every later query.
			if st := s.SolveAssuming(randAssumps()...); st != Unsat {
				t.Fatalf("solver answered %v after top-level unsat", st)
			}
			continue
		}
		query(prefix, randAssumps())
	}
	if dead {
		return
	}
	// Final assumption-free call vs a fresh solver on the full CNF.
	query(prefix, nil)
	fresh := New()
	for i := 0; i < nVars; i++ {
		fresh.NewVar()
	}
	freshSt := Status(Unsat)
	ok := true
	for _, c := range prefix {
		if !fresh.AddClause(c...) {
			ok = false
			break
		}
	}
	if ok {
		freshSt = fresh.Solve()
	}
	if incSt := s.SolveAssuming(); incSt != freshSt {
		t.Fatalf("incremental solver says %v, fresh solver says %v\nnVars=%d clauses=%v", incSt, freshSt, nVars, prefix)
	}
}

// incrementalSeed derives a deterministic chunking/assumption seed
// from the CNF itself, so fuzz executions are reproducible.
func incrementalSeed(nVars int, clauses [][]Lit) int64 {
	h := int64(nVars)
	for _, c := range clauses {
		h = h*131 + int64(len(c))
		for _, l := range c {
			h = h*31 + int64(l)
		}
	}
	return h
}

func FuzzSolver(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 2, 3, 0, 5, 0})            // (x1 ∨ ¬x1)(¬x2)
	f.Add([]byte{1, 2, 0, 3, 0})               // x1 ∧ ¬x1: unsat
	f.Add([]byte{11, 4, 7, 0, 9, 12, 0, 2, 0}) // mixed 3-clause instance
	f.Fuzz(func(t *testing.T, data []byte) {
		nVars, clauses := decodeCNF(data)
		checkCNF(t, nVars, clauses)
		checkIncrementalCNF(t, nVars, clauses, incrementalSeed(nVars, clauses))
	})
}

// TestSolverVsBruteForce replays a fixed random corpus so the
// differential oracle runs on every `go test`, not only under -fuzz.
func TestSolverVsBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 300
	if testing.Short() {
		n = 100
	}
	for i := 0; i < n; i++ {
		nVars := 1 + r.Intn(fuzzMaxVars)
		nClauses := r.Intn(4 * nVars)
		clauses := make([][]Lit, 0, nClauses)
		for j := 0; j < nClauses; j++ {
			width := 1 + r.Intn(4)
			c := make([]Lit, 0, width)
			for k := 0; k < width; k++ {
				// Duplicate and complementary literals are left in on
				// purpose: AddClause must handle both.
				c = append(c, MkLit(r.Intn(nVars), r.Intn(2) == 1))
			}
			clauses = append(clauses, c)
		}
		checkCNF(t, nVars, clauses)
		checkIncrementalCNF(t, nVars, clauses, int64(1000+i))
	}
}
