package sat

import (
	"math/rand"
	"testing"
)

// Differential fuzzing of the CDCL solver against a brute-force
// enumerator on small CNFs (≤ 12 variables, so the enumerator can
// decide by trying all ≤ 4096 assignments). Two entry points share
// the oracle: FuzzSolver explores byte-encoded CNFs under `go test
// -fuzz`, and TestSolverVsBruteForce replays a seeded random corpus on
// every plain `go test` run.

const fuzzMaxVars = 12

// decodeCNF maps arbitrary bytes onto a CNF: the first byte fixes the
// variable count, zero bytes end clauses, and every other byte is one
// literal. Any input decodes to something, so the fuzzer wastes no
// executions on parse failures.
func decodeCNF(data []byte) (nVars int, clauses [][]Lit) {
	if len(data) == 0 {
		return 1, nil
	}
	nVars = 1 + int(data[0])%fuzzMaxVars
	var cur []Lit
	for _, b := range data[1:] {
		if b == 0 {
			if len(cur) > 0 {
				clauses = append(clauses, cur)
				cur = nil
			}
			continue
		}
		if len(cur) < 8 {
			cur = append(cur, MkLit(int(b>>1)%nVars, b&1 == 1))
		}
		if len(clauses) == 64 {
			return nVars, clauses
		}
	}
	if len(cur) > 0 {
		clauses = append(clauses, cur)
	}
	return nVars, clauses
}

// checkCNF runs the solver on the CNF and cross-checks status and
// model against the enumerator.
func checkCNF(t *testing.T, nVars int, clauses [][]Lit) {
	t.Helper()
	s := New()
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	addOK := true
	for _, c := range clauses {
		if !s.AddClause(c...) {
			addOK = false
			break
		}
	}
	wantSat := bruteForce(nVars, clauses) // enumeration oracle from sat_test.go
	if !addOK {
		// AddClause detected top-level unsatisfiability early; the
		// enumerator must agree.
		if wantSat {
			t.Fatalf("AddClause says unsat, brute force says sat\nnVars=%d clauses=%v", nVars, clauses)
		}
		return
	}
	st := s.Solve()
	if st == Unknown {
		t.Fatalf("solver returned unknown without a budget\nnVars=%d clauses=%v", nVars, clauses)
	}
	if (st == Sat) != wantSat {
		t.Fatalf("solver says %v, brute force says sat=%v\nnVars=%d clauses=%v", st, wantSat, nVars, clauses)
	}
	if st != Sat {
		return
	}
	// The solver's model must actually satisfy every input clause.
	for _, c := range clauses {
		ok := false
		for _, l := range c {
			switch s.ValueLit(l) {
			case TrueV:
				ok = true
			case Undef:
				t.Fatalf("sat model leaves %v unassigned\nnVars=%d clauses=%v", l, nVars, clauses)
			}
			if ok {
				break
			}
		}
		if !ok {
			t.Fatalf("model falsifies clause %v\nnVars=%d clauses=%v", c, nVars, clauses)
		}
	}
}

func FuzzSolver(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 2, 3, 0, 5, 0})            // (x1 ∨ ¬x1)(¬x2)
	f.Add([]byte{1, 2, 0, 3, 0})               // x1 ∧ ¬x1: unsat
	f.Add([]byte{11, 4, 7, 0, 9, 12, 0, 2, 0}) // mixed 3-clause instance
	f.Fuzz(func(t *testing.T, data []byte) {
		nVars, clauses := decodeCNF(data)
		checkCNF(t, nVars, clauses)
	})
}

// TestSolverVsBruteForce replays a fixed random corpus so the
// differential oracle runs on every `go test`, not only under -fuzz.
func TestSolverVsBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 300
	if testing.Short() {
		n = 100
	}
	for i := 0; i < n; i++ {
		nVars := 1 + r.Intn(fuzzMaxVars)
		nClauses := r.Intn(4 * nVars)
		clauses := make([][]Lit, 0, nClauses)
		for j := 0; j < nClauses; j++ {
			width := 1 + r.Intn(4)
			c := make([]Lit, 0, width)
			for k := 0; k < width; k++ {
				// Duplicate and complementary literals are left in on
				// purpose: AddClause must handle both.
				c = append(c, MkLit(r.Intn(nVars), r.Intn(2) == 1))
			}
			clauses = append(clauses, c)
		}
		checkCNF(t, nVars, clauses)
	}
}
