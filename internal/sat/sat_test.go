package sat

import (
	"math/rand"
	"testing"
)

func TestBasicSat(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(Pos(a), Pos(b))
	s.AddClause(Neg(a))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want sat", got)
	}
	if s.Value(a) != FalseV {
		t.Errorf("a = %v, want false", s.Value(a))
	}
	if s.Value(b) != TrueV {
		t.Errorf("b = %v, want true", s.Value(b))
	}
}

func TestBasicUnsat(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(Pos(a), Pos(b))
	s.AddClause(Pos(a), Neg(b))
	s.AddClause(Neg(a), Pos(b))
	s.AddClause(Neg(a), Neg(b))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want unsat", got)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Fatal("AddClause() of empty clause returned true")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want unsat", got)
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(Pos(a), Neg(a)) {
		t.Fatal("tautology rejected")
	}
	if s.NumClauses() != 0 {
		t.Errorf("NumClauses = %d, want 0 (tautology dropped)", s.NumClauses())
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want sat", got)
	}
}

func TestDuplicateLiterals(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(Pos(a), Pos(a), Pos(a))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want sat", got)
	}
	if s.Value(a) != TrueV {
		t.Errorf("a = %v, want true", s.Value(a))
	}
}

func TestUnitPropagationChain(t *testing.T) {
	s := New()
	n := 50
	vs := make([]int, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	s.AddClause(Pos(vs[0]))
	for i := 0; i+1 < n; i++ {
		s.AddClause(Neg(vs[i]), Pos(vs[i+1]))
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want sat", got)
	}
	for i, v := range vs {
		if s.Value(v) != TrueV {
			t.Fatalf("v%d = %v, want true", i, s.Value(v))
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(Neg(a), Pos(b))

	if got := s.Solve(Pos(a)); got != Sat {
		t.Fatalf("Solve(a) = %v, want sat", got)
	}
	if s.Value(b) != TrueV {
		t.Errorf("b = %v under assumption a, want true", s.Value(b))
	}
	// Incompatible assumptions.
	if got := s.Solve(Pos(a), Neg(b)); got != Unsat {
		t.Fatalf("Solve(a, !b) = %v, want unsat", got)
	}
	core := s.Core()
	if len(core) == 0 || len(core) > 2 {
		t.Fatalf("Core = %v, want nonempty subset of assumptions", core)
	}
	for _, l := range core {
		if l != Pos(a) && l != Neg(b) {
			t.Errorf("core literal %v is not an assumption", l)
		}
	}
	// Solver must remain usable afterwards.
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() after assumption-unsat = %v, want sat", got)
	}
}

func TestCoreMinimalish(t *testing.T) {
	// x1..x4 assumptions, but only x1 & x2 conflict via clauses.
	s := New()
	x := make([]int, 4)
	for i := range x {
		x[i] = s.NewVar()
	}
	s.AddClause(Neg(x[0]), Neg(x[1]))
	asm := []Lit{Pos(x[0]), Pos(x[1]), Pos(x[2]), Pos(x[3])}
	if got := s.Solve(asm...); got != Unsat {
		t.Fatalf("Solve = %v, want unsat", got)
	}
	core := s.Core()
	inCore := map[Lit]bool{}
	for _, l := range core {
		inCore[l] = true
	}
	if !inCore[Pos(x[0])] || !inCore[Pos(x[1])] {
		t.Errorf("Core = %v, must contain x0 and x1", core)
	}
	if inCore[Pos(x[2])] || inCore[Pos(x[3])] {
		t.Errorf("Core = %v, should not contain irrelevant assumptions", core)
	}
}

func TestIncrementalAdding(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(Pos(a), Pos(b))
	if got := s.Solve(); got != Sat {
		t.Fatalf("first Solve = %v, want sat", got)
	}
	s.AddClause(Neg(a))
	s.AddClause(Neg(b))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("after narrowing, Solve = %v, want unsat", got)
	}
}

func TestPhaseSuggestion(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(Pos(a), Pos(b)) // satisfiable either way
	s.SetPhase(a, false)
	s.SetPhase(b, true)
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want sat", got)
	}
	if s.Value(b) != TrueV {
		t.Errorf("b = %v, want suggested phase true", s.Value(b))
	}
}

// bruteForce checks satisfiability by enumeration; n must be small.
func bruteForce(n int, clauses [][]Lit) bool {
	for m := 0; m < 1<<n; m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				bit := m>>(l.Var())&1 == 1
				if bit != l.Sign() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(10)
		m := 1 + rng.Intn(5*n)
		clauses := make([][]Lit, m)
		for i := range clauses {
			k := 1 + rng.Intn(3)
			c := make([]Lit, k)
			for j := range c {
				c[j] = MkLit(rng.Intn(n), rng.Intn(2) == 0)
			}
			clauses[i] = c
		}
		s := New()
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		for _, c := range clauses {
			s.AddClause(c...)
		}
		got := s.Solve()
		want := bruteForce(n, clauses)
		if (got == Sat) != want {
			t.Fatalf("trial %d: solver=%v bruteforce sat=%v clauses=%v", trial, got, want, clauses)
		}
		if got == Sat {
			// Verify the model satisfies every clause.
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if s.ValueLit(l) == TrueV {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("trial %d: model does not satisfy clause %v", trial, c)
				}
			}
		}
	}
}

func TestRandomWithAssumptions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(8)
		m := 1 + rng.Intn(4*n)
		clauses := make([][]Lit, m)
		for i := range clauses {
			k := 1 + rng.Intn(3)
			c := make([]Lit, k)
			for j := range c {
				c[j] = MkLit(rng.Intn(n), rng.Intn(2) == 0)
			}
			clauses[i] = c
		}
		nAsm := rng.Intn(3)
		asm := make([]Lit, 0, nAsm)
		used := map[int]bool{}
		for len(asm) < nAsm {
			v := rng.Intn(n)
			if used[v] {
				continue
			}
			used[v] = true
			asm = append(asm, MkLit(v, rng.Intn(2) == 0))
		}
		s := New()
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		for _, c := range clauses {
			s.AddClause(c...)
		}
		got := s.Solve(asm...)
		// Brute force with assumptions as unit clauses.
		all := append([][]Lit{}, clauses...)
		for _, a := range asm {
			all = append(all, []Lit{a})
		}
		want := bruteForce(n, all)
		if (got == Sat) != want {
			t.Fatalf("trial %d: solver=%v brute=%v asm=%v clauses=%v", trial, got, want, asm, clauses)
		}
		if got == Unsat {
			// The core, added as units, must itself be unsat with clauses.
			coreCl := append([][]Lit{}, clauses...)
			for _, l := range s.Core() {
				coreCl = append(coreCl, []Lit{l})
			}
			if bruteForce(n, coreCl) {
				t.Fatalf("trial %d: core %v is not actually conflicting", trial, s.Core())
			}
		}
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(5,4): 5 pigeons, 4 holes — classic small hard UNSAT.
	const p, h = 5, 4
	s := New()
	vars := [p][h]int{}
	for i := 0; i < p; i++ {
		for j := 0; j < h; j++ {
			vars[i][j] = s.NewVar()
		}
	}
	for i := 0; i < p; i++ {
		c := make([]Lit, h)
		for j := 0; j < h; j++ {
			c[j] = Pos(vars[i][j])
		}
		s.AddClause(c...)
	}
	for j := 0; j < h; j++ {
		for i1 := 0; i1 < p; i1++ {
			for i2 := i1 + 1; i2 < p; i2++ {
				s.AddClause(Neg(vars[i1][j]), Neg(vars[i2][j]))
			}
		}
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(5,4) = %v, want unsat", got)
	}
	if s.Conflicts == 0 {
		t.Error("expected a nontrivial search (no conflicts recorded)")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestConflictBudget(t *testing.T) {
	// A hard instance with a tiny budget must return Unknown.
	const p, h = 8, 7
	s := New()
	vars := [p][h]int{}
	for i := 0; i < p; i++ {
		for j := 0; j < h; j++ {
			vars[i][j] = s.NewVar()
		}
	}
	for i := 0; i < p; i++ {
		c := make([]Lit, h)
		for j := 0; j < h; j++ {
			c[j] = Pos(vars[i][j])
		}
		s.AddClause(c...)
	}
	for j := 0; j < h; j++ {
		for i1 := 0; i1 < p; i1++ {
			for i2 := i1 + 1; i2 < p; i2++ {
				s.AddClause(Neg(vars[i1][j]), Neg(vars[i2][j]))
			}
		}
	}
	s.ConflictBudget = 10
	if got := s.Solve(); got != Unknown {
		t.Fatalf("Solve with tiny budget = %v, want unknown", got)
	}
	s.ConflictBudget = 0
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve without budget = %v, want unsat", got)
	}
}

func TestLitHelpers(t *testing.T) {
	l := MkLit(5, true)
	if l.Var() != 5 || !l.Sign() {
		t.Errorf("MkLit(5,true): Var=%d Sign=%v", l.Var(), l.Sign())
	}
	if l.Not().Sign() || l.Not().Var() != 5 {
		t.Errorf("Not broken: %v", l.Not())
	}
	if Pos(3).String() != "4" || Neg(3).String() != "-4" {
		t.Errorf("String: %s %s", Pos(3), Neg(3))
	}
}
