package witness_test

// Model-based conformance harness: seeded random transition systems
// and properties are thrown at every engine, and every verdict's
// evidence must survive independent validation — counterexamples must
// replay and genuinely violate the property, certificates must check
// by direct evaluation, and no two engines may return contradictory
// conclusive verdicts on the same instance. The harness is the
// executable form of the package contract: an engine bug that
// produces a wrong verdict with evidence cannot pass.
//
// The seeds are fixed so failures reproduce exactly; CI runs the
// harness several times (-count) to shake out schedule-dependent
// behavior in the portfolio.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"verdict/internal/expr"
	"verdict/internal/ltl"
	"verdict/internal/mc"
	"verdict/internal/ts"
	"verdict/internal/witness"
)

// rv is a generated variable with its domain, so the generator can
// emit constants and comparisons that stay in range.
type rv struct {
	v      *expr.Var
	lo, hi int64 // int domain; unused for bool
	isBool bool
}

func (g rv) randConst(r *rand.Rand) *expr.Expr {
	if g.isBool {
		return expr.BoolConst(r.Intn(2) == 0)
	}
	return expr.IntConst(g.lo + r.Int63n(g.hi-g.lo+1))
}

// randomSystem builds a small closed finite system: 2-3 bounded ints
// plus a boolean, each with a constant initial value and a
// deterministic update that may branch on the other variables — rich
// enough to exercise lassos, inductive invariants, and reachability,
// small enough that every engine decides it in milliseconds.
func randomSystem(r *rand.Rand, name string) (*ts.System, []rv) {
	sys := ts.New(name)
	n := 2 + r.Intn(2)
	vars := make([]rv, 0, n+1)
	for i := 0; i < n; i++ {
		hi := int64(2 + r.Intn(2))
		vars = append(vars, rv{v: sys.Int(fmt.Sprintf("v%d", i), 0, hi), lo: 0, hi: hi})
	}
	vars = append(vars, rv{v: sys.Bool("flag"), isBool: true})
	for _, g := range vars {
		sys.Init(g.v, g.randConst(r))
	}
	for _, g := range vars {
		sys.Assign(g.v, randomUpdate(r, g, vars))
	}
	return sys, vars
}

// randomUpdate returns a next-state expression for g whose value is
// always inside g's domain.
func randomUpdate(r *rand.Rand, g rv, vars []rv) *expr.Expr {
	if g.isBool {
		switch r.Intn(4) {
		case 0:
			return g.v.Ref()
		case 1:
			return expr.Not(g.v.Ref())
		case 2:
			return g.randConst(r)
		default:
			return randomAtom(r, vars)
		}
	}
	wrapInc := func() *expr.Expr {
		return expr.Ite(expr.Lt(g.v.Ref(), expr.IntConst(g.hi)),
			expr.Add(g.v.Ref(), expr.IntConst(1)), expr.IntConst(g.lo))
	}
	switch r.Intn(4) {
	case 0:
		return g.v.Ref()
	case 1:
		return wrapInc()
	case 2:
		return g.randConst(r)
	default:
		arms := []func() *expr.Expr{g.v.Ref, wrapInc, func() *expr.Expr { return g.randConst(r) }}
		return expr.Ite(randomAtom(r, vars),
			arms[r.Intn(len(arms))](), arms[r.Intn(len(arms))]())
	}
}

// randomAtom returns a boolean state predicate over the variables.
func randomAtom(r *rand.Rand, vars []rv) *expr.Expr {
	g := vars[r.Intn(len(vars))]
	if g.isBool {
		if r.Intn(2) == 0 {
			return g.v.Ref()
		}
		return expr.Not(g.v.Ref())
	}
	c := g.randConst(r)
	switch r.Intn(3) {
	case 0:
		return expr.Le(g.v.Ref(), c)
	case 1:
		return expr.Eq(g.v.Ref(), c)
	default:
		return expr.Ne(g.v.Ref(), c)
	}
}

// randomProperty returns one of the paper-relevant property shapes:
// safety invariants and the liveness patterns of the case studies.
func randomProperty(r *rand.Rand, vars []rv) *ltl.Formula {
	a := ltl.Atom(randomAtom(r, vars))
	switch r.Intn(4) {
	case 0:
		return ltl.G(a)
	case 1:
		return ltl.F(ltl.G(a))
	case 2:
		return ltl.G(ltl.F(a))
	default:
		return ltl.U(a, ltl.Atom(randomAtom(r, vars)))
	}
}

// TestConformance is the harness entry point CI invokes with -run
// Conformance -count=3.
func TestConformance(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 8; i++ {
				sys, vars := randomSystem(r, fmt.Sprintf("rand-%d-%d", seed, i))
				if err := sys.Validate(); err != nil {
					t.Fatalf("generator produced an invalid system: %v", err)
				}
				for j := 0; j < 3; j++ {
					phi := randomProperty(r, vars)
					checkInstance(t, sys, phi, fmt.Sprintf("sys%d/prop%d: %s", i, j, phi))
				}
			}
		})
	}
}

// TestConformanceCooperation sweeps the portfolio over random
// instances in cooperative and non-cooperative (-no-coop) modes.
// Cooperation shares only proven facts between engines, so the two
// modes must return identical verdicts on every instance, and the
// evidence from both must survive independent validation. CI runs
// this under -race: the sweep doubles as a scheduler-noise audit of
// the cooperation bus inside the real portfolio topology.
func TestConformanceCooperation(t *testing.T) {
	for _, seed := range []int64{11, 12} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 6; i++ {
				sys, vars := randomSystem(r, fmt.Sprintf("coop-%d-%d", seed, i))
				if err := sys.Validate(); err != nil {
					t.Fatalf("generator produced an invalid system: %v", err)
				}
				for j := 0; j < 2; j++ {
					phi := randomProperty(r, vars)
					what := fmt.Sprintf("sys%d/prop%d: %s", i, j, phi)
					opts := mc.Options{MaxDepth: 12, Timeout: 10 * time.Second, ValidateWitness: true}
					coop, err := mc.Portfolio(sys, phi, opts)
					if err != nil {
						t.Fatalf("%s: cooperative portfolio failed: %v", what, err)
					}
					opts.NoCooperation = true
					racing, err := mc.Portfolio(sys, phi, opts)
					if err != nil {
						t.Fatalf("%s: racing portfolio failed: %v", what, err)
					}
					// These instances are tiny, so both modes conclude; an
					// Unknown would make the equivalence check vacuous.
					if coop.Status == mc.Unknown || racing.Status == mc.Unknown {
						t.Fatalf("%s: inconclusive on a toy instance: coop=%v racing=%v",
							what, coop.Status, racing.Status)
					}
					if coop.Status != racing.Status {
						t.Fatalf("%s: cooperation flipped the verdict: coop=%v racing=%v",
							what, coop.Status, racing.Status)
					}
					for _, res := range []*mc.Result{coop, racing} {
						if res.Witness == witness.Failed {
							t.Fatalf("%s: %s verdict failed witness validation: %s", what, res.Engine, res.Note)
						}
						if res.Trace != nil {
							if err := witness.Validate(sys, phi, res.Trace); err != nil {
								t.Fatalf("%s: %s counterexample rejected: %v", what, res.Engine, err)
							}
						}
					}
					if racing.Stats != nil &&
						(racing.Stats.BoundsShared != 0 || racing.Stats.InvariantsHandedOff != 0) {
						t.Fatalf("%s: -no-coop run reports cooperation traffic: %+v", what, racing.Stats)
					}
				}
			}
		})
	}
}

// checkInstance runs every applicable engine on (sys, phi) and holds
// each verdict to the conformance contract.
func checkInstance(t *testing.T, sys *ts.System, phi *ltl.Formula, what string) {
	t.Helper()
	opts := mc.Options{MaxDepth: 12, Timeout: 10 * time.Second, ValidateWitness: true}
	type engine struct {
		name string
		run  func() (*mc.Result, error)
	}
	engines := []engine{
		{"checkltl", func() (*mc.Result, error) { return mc.CheckLTL(sys, phi, opts) }},
		{"bmc", func() (*mc.Result, error) { return mc.BMC(sys, phi, opts) }},
		{"portfolio", func() (*mc.Result, error) { return mc.Portfolio(sys, phi, opts) }},
		{"bdd", func() (*mc.Result, error) {
			sym, err := mc.NewSym(sys, opts)
			if err != nil {
				return nil, err
			}
			return sym.CheckLTL(phi)
		}},
	}
	if p, ok := ltl.IsSafetyInvariant(phi); ok {
		engines = append(engines,
			engine{"k-induction", func() (*mc.Result, error) { return mc.KInduction(sys, p, opts) }},
			engine{"bdd-invariant", func() (*mc.Result, error) {
				sym, err := mc.NewSym(sys, opts)
				if err != nil {
					return nil, err
				}
				return sym.CheckInvariant(p)
			}})
	}

	verdicts := map[string]mc.Status{}
	for _, e := range engines {
		res, err := e.run()
		if err != nil {
			t.Fatalf("%s: engine %s failed: %v", what, e.name, err)
		}
		if res.Status == mc.Unknown {
			continue
		}
		verdicts[e.name] = res.Status
		if res.Witness == witness.Failed {
			t.Fatalf("%s: engine %s verdict failed witness validation: %s", what, e.name, res.Note)
		}
		if res.Stats != nil && res.Stats.WitnessFailures > 0 {
			t.Fatalf("%s: engine %s recorded %d witness failures: %v",
				what, e.name, res.Stats.WitnessFailures, res.Stats.EngineErrors)
		}
		switch res.Status {
		case mc.Violated:
			// The BDD tableau concludes liveness violations from the fair
			// fixpoint without materializing a lasso — a traceless verdict
			// carries no evidence to validate. Everything that does emit a
			// counterexample must replay.
			if res.Trace == nil {
				if res.Witness != witness.None {
					t.Fatalf("%s: engine %s has witness status %q without a trace", what, e.name, res.Witness)
				}
				break
			}
			if err := witness.Validate(sys, phi, res.Trace); err != nil {
				t.Fatalf("%s: engine %s counterexample rejected by the witness validator: %v", what, e.name, err)
			}
		case mc.Holds:
			if res.Cert != nil {
				if err := witness.ValidateCertificate(sys, res.Cert, witness.DefaultLimit); err != nil &&
					!errors.Is(err, witness.ErrUncheckable) {
					t.Fatalf("%s: engine %s certificate rejected: %v", what, e.name, err)
				}
			}
		}
	}
	// Conclusive engines must agree: a Violated next to a Holds means
	// one of them is wrong about the same instance.
	var holds, violated []string
	for name, s := range verdicts {
		if s == mc.Holds {
			holds = append(holds, name)
		} else {
			violated = append(violated, name)
		}
	}
	if len(holds) > 0 && len(violated) > 0 {
		t.Fatalf("%s: engines disagree: holds=%v violated=%v", what, holds, violated)
	}
}
