package witness

import (
	"errors"
	"strings"
	"testing"

	"verdict/internal/expr"
	"verdict/internal/ltl"
	"verdict/internal/trace"
	"verdict/internal/ts"
)

// counterSys builds a 2-bit counter that wraps at hi: x' = (x < hi ?
// x+1 : 0), x0 = 0.
func counterSys(t *testing.T, hi int64) (*ts.System, *expr.Var) {
	t.Helper()
	sys := ts.New("counter")
	x := sys.Int("x", 0, 3)
	sys.Init(x, expr.IntConst(0))
	sys.Assign(x, expr.Ite(expr.Lt(x.Ref(), expr.IntConst(hi)),
		expr.Add(x.Ref(), expr.IntConst(1)), expr.IntConst(0)))
	return sys, x
}

func counterTrace(vals []int64, loop int) *trace.Trace {
	tr := trace.New()
	tr.LoopStart = loop
	for _, v := range vals {
		st := trace.NewState()
		st.Values["x"] = expr.IntValue(v)
		tr.States = append(tr.States, st)
	}
	return tr
}

func TestValidateFinitePrefix(t *testing.T) {
	sys, x := counterSys(t, 3)
	phi := ltl.G(ltl.Atom(expr.Lt(x.Ref(), expr.IntConst(2)))) // G(x < 2): violated at x=2
	good := counterTrace([]int64{0, 1, 2}, -1)
	if err := Validate(sys, phi, good); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}

	cases := []struct {
		name string
		tr   *trace.Trace
		want string
	}{
		{"bad init", counterTrace([]int64{1, 2}, -1), "INIT"},
		{"bad step", counterTrace([]int64{0, 2}, -1), "TRANS"},
		{"no violation", counterTrace([]int64{0, 1}, -1), "does not demonstrate"},
		{"missing var", &trace.Trace{States: []trace.State{trace.NewState()}, LoopStart: -1, Params: map[string]expr.Value{}}, "missing variable"},
		{"empty", trace.New(), "empty"},
		{"loop out of range", counterTrace([]int64{0, 1, 2}, 7), "out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Validate(sys, phi, c.tr)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}

func TestValidateLasso(t *testing.T) {
	sys, x := counterSys(t, 2)
	// F(G(x = 0)) is violated by the lasso 0 -> 1 -> 2 -> 0 ...
	phi := ltl.F(ltl.G(ltl.Atom(expr.Eq(x.Ref(), expr.IntConst(0)))))
	lasso := counterTrace([]int64{0, 1, 2}, 0)
	if err := Validate(sys, phi, lasso); err != nil {
		t.Fatalf("valid lasso rejected: %v", err)
	}
	// The same trace read as a finite prefix cannot demonstrate the
	// liveness violation (some extension might stabilize at 0).
	finite := counterTrace([]int64{0, 1, 2}, -1)
	if err := Validate(sys, phi, finite); err == nil || !strings.Contains(err.Error(), "does not demonstrate") {
		t.Fatalf("finite prefix accepted as liveness violation: %v", err)
	}
	// Broken loop closure: 2 loops back to state 1 (value 1), but the
	// counter steps 2 -> 0.
	bad := counterTrace([]int64{0, 1, 2}, 1)
	if err := Validate(sys, phi, bad); err == nil || !strings.Contains(err.Error(), "loop-closing") {
		t.Fatalf("want loop-closing error, got %v", err)
	}
}

func TestValidateLassoUntilRelease(t *testing.T) {
	sys, x := counterSys(t, 2)
	lasso := counterTrace([]int64{0, 1, 2}, 0)
	lt2 := ltl.Atom(expr.Lt(x.Ref(), expr.IntConst(2)))
	eq2 := ltl.Atom(expr.Eq(x.Ref(), expr.IntConst(2)))
	// (x<2) U (x=2) holds on the lasso, so its negation is not violated.
	if err := Validate(sys, ltl.Not(ltl.U(lt2, eq2)), lasso); err != nil {
		t.Fatalf("until violation not recognized: %v", err)
	}
	// G F (x = 0) holds on the lasso (the loop revisits 0 forever), so
	// the lasso does NOT violate it.
	if err := Validate(sys, ltl.G(ltl.F(ltl.Atom(expr.Eq(x.Ref(), expr.IntConst(0))))), lasso); err == nil {
		t.Fatal("lasso wrongly accepted as violating G F (x=0)")
	}
}

func TestValidateParams(t *testing.T) {
	sys := ts.New("param")
	x := sys.Int("x", 0, 3)
	k := sys.IntParam("k", 1, 2)
	sys.Init(x, expr.IntConst(0))
	sys.Assign(x, expr.Ite(expr.Lt(x.Ref(), k.Ref()),
		expr.Add(x.Ref(), expr.IntConst(1)), x.Ref()))
	phi := ltl.G(ltl.Atom(expr.Lt(x.Ref(), expr.IntConst(2))))

	tr := counterTrace([]int64{0, 1, 2}, -1)
	tr.Params["k"] = expr.IntValue(2)
	if err := Validate(sys, phi, tr); err != nil {
		t.Fatalf("valid parameterized trace rejected: %v", err)
	}
	// Under k=1 the step 1 -> 2 is not a transition.
	tr.Params["k"] = expr.IntValue(1)
	if err := Validate(sys, phi, tr); err == nil || !strings.Contains(err.Error(), "TRANS") {
		t.Fatalf("want TRANS error under k=1, got %v", err)
	}
	delete(tr.Params, "k")
	if err := Validate(sys, phi, tr); err == nil || !strings.Contains(err.Error(), "missing parameter") {
		t.Fatalf("want missing parameter error, got %v", err)
	}
}

func TestValidateCertificateInductive(t *testing.T) {
	sys, x := counterSys(t, 2) // x cycles 0,1,2; never reaches 3
	p := expr.Lt(x.Ref(), expr.IntConst(3))
	good := &Certificate{Kind: "k-induction", Property: p, Invariant: p}
	if err := ValidateCertificate(sys, good, 0); err != nil {
		t.Fatalf("inductive certificate rejected: %v", err)
	}
	// x < 2 is NOT inductive (1 -> 2 leaves it) and not even true.
	bad := &Certificate{Kind: "k-induction", Property: p, Invariant: expr.Lt(x.Ref(), expr.IntConst(2))}
	if err := ValidateCertificate(sys, bad, 0); err == nil {
		t.Fatal("non-inductive certificate accepted")
	}
	// An invariant that excludes the initial state must be rejected.
	noInit := &Certificate{Kind: "k-induction", Property: p, Invariant: expr.Gt(x.Ref(), expr.IntConst(0))}
	if err := ValidateCertificate(sys, noInit, 0); err == nil || !strings.Contains(err.Error(), "initial") {
		t.Fatalf("want initial-state error, got %v", err)
	}
	// An invariant that admits a property-violating state fails too.
	weak := &Certificate{Kind: "bdd-reach", Property: expr.Lt(x.Ref(), expr.IntConst(2)), Invariant: expr.True()}
	if err := ValidateCertificate(sys, weak, 0); err == nil || !strings.Contains(err.Error(), "property-violating") {
		t.Fatalf("want property-violating error, got %v", err)
	}
}

func TestValidateCertificateReachability(t *testing.T) {
	sys, x := counterSys(t, 2)
	// G(x < 3) holds by reachability (3 is never reached) even though
	// x < 3 alone is also inductive; the nil-invariant certificate
	// exercises the explicit replay path.
	ok := &Certificate{Kind: "k-induction", Property: expr.Lt(x.Ref(), expr.IntConst(3)), Depth: 2}
	if err := ValidateCertificate(sys, ok, 0); err != nil {
		t.Fatalf("reachability certificate rejected: %v", err)
	}
	// G(x < 2) is false (2 is reachable): the replay must find it.
	bad := &Certificate{Kind: "k-induction", Property: expr.Lt(x.Ref(), expr.IntConst(2)), Depth: 2}
	if err := ValidateCertificate(sys, bad, 0); err == nil || !strings.Contains(err.Error(), "reachable state violates") {
		t.Fatalf("want reachable-violation error, got %v", err)
	}
}

func TestValidateCertificateUncheckable(t *testing.T) {
	sys, x := counterSys(t, 2)
	c := &Certificate{Kind: "k-induction", Property: expr.Lt(x.Ref(), expr.IntConst(3))}
	if err := ValidateCertificate(sys, c, 2); !errors.Is(err, ErrUncheckable) {
		t.Fatalf("want ErrUncheckable under tiny budget, got %v", err)
	}
	// Real-valued systems cannot be enumerated.
	rs := ts.New("real")
	r := rs.Real("r")
	rs.AddInit(expr.Eq(r.Ref(), expr.RealFrac(0, 1)))
	rs.AddTrans(expr.Eq(r.Next(), r.Ref()))
	rc := &Certificate{Kind: "k-induction", Property: expr.Ge(r.Ref(), expr.RealFrac(0, 1))}
	if err := ValidateCertificate(rs, rc, 0); !errors.Is(err, ErrUncheckable) {
		t.Fatalf("want ErrUncheckable for real system, got %v", err)
	}
}

func TestStatusString(t *testing.T) {
	if None.String() != "none" || Validated.String() != "validated" ||
		Failed.String() != "failed" || Skipped.String() != "skipped" {
		t.Fatalf("unexpected status strings: %q %q %q %q", None, Validated, Failed, Skipped)
	}
}
