// Package witness independently certifies model-checking verdicts.
//
// The engines in internal/mc are complex: CNF compilation, CDCL
// search, BDD fixpoints, tableau products. This package is their
// referee, and it is deliberately simple — plain expression evaluation
// over concrete states, nothing shared with the engines that produced
// the evidence. A Violated verdict is certified by replaying its
// counterexample trace against the transition-system semantics and
// re-evaluating the LTL property on it (Validate); a Holds verdict is
// certified by checking the engine-attached Certificate by direct
// enumeration (ValidateCertificate).
//
// The package must not import internal/mc (mc imports witness to
// attach and check evidence); it sees only the system, the formula,
// and the trace.
package witness

import (
	"errors"
	"fmt"

	"verdict/internal/expr"
	"verdict/internal/ltl"
	"verdict/internal/trace"
	"verdict/internal/ts"
)

// Status reports the outcome of witness validation for a Result.
type Status string

// Validation outcomes. The zero value None means there was nothing to
// validate (no trace, no certificate) or validation was not requested.
const (
	None      Status = ""
	Validated Status = "validated"
	Failed    Status = "failed"
	// Skipped means the verdict carried a certificate but the state
	// space is too large to check it by direct enumeration.
	Skipped Status = "skipped"
)

// String renders the status for wire formats and CLI output; None
// prints as "none".
func (s Status) String() string {
	if s == None {
		return "none"
	}
	return string(s)
}

// Validate replays a counterexample trace against the system semantics
// and checks that it really demonstrates a violation of phi:
//
//   - state 0 satisfies INIT and INVAR,
//   - every state satisfies INVAR,
//   - every consecutive pair satisfies TRANS,
//   - for lasso traces the loop-closing step satisfies TRANS,
//   - the trace satisfies ¬phi under exact lasso semantics (lassos) or
//     the conservative informative-prefix semantics (finite prefixes).
//
// A nil error means the trace is an execution of sys that violates phi.
func Validate(sys *ts.System, phi *ltl.Formula, t *trace.Trace) error {
	envs, err := traceEnvs(sys, t)
	if err != nil {
		return err
	}
	if err := replay(sys, t, envs); err != nil {
		return err
	}
	if phi == nil {
		return nil
	}
	viol, err := holds(ltl.Not(phi).NNF(), envs, t.LoopStart)
	if err != nil {
		return fmt.Errorf("witness: evaluating property on trace: %w", err)
	}
	if !viol {
		return fmt.Errorf("witness: trace does not demonstrate a violation of %s", phi)
	}
	return nil
}

// traceEnvs binds each state's variable values (plus the shared
// parameter values) into one evaluation environment per state. States
// may carry extra entries (engines record DEFINE values for display);
// those are ignored. A missing declared variable is an error — a trace
// with holes proves nothing.
func traceEnvs(sys *ts.System, t *trace.Trace) ([]expr.MapEnv, error) {
	if t == nil || t.Len() == 0 {
		return nil, fmt.Errorf("witness: empty trace")
	}
	if t.LoopStart >= t.Len() {
		return nil, fmt.Errorf("witness: loop start %d out of range (trace has %d states)", t.LoopStart, t.Len())
	}
	envs := make([]expr.MapEnv, t.Len())
	for i, st := range t.States {
		env := expr.MapEnv{}
		for _, v := range sys.Vars() {
			val, ok := st.Get(v.Name)
			if !ok {
				return nil, fmt.Errorf("witness: state %d missing variable %s", i, v.Name)
			}
			env[v] = val
		}
		for _, p := range sys.Params() {
			val, ok := t.Params[p.Name]
			if !ok {
				return nil, fmt.Errorf("witness: trace missing parameter %s", p.Name)
			}
			env[p] = val
		}
		envs[i] = env
	}
	return envs, nil
}

// replay checks the structural conditions: init, invariants, and the
// transition relation along the trace (including the loop-closing step
// of a lasso).
func replay(sys *ts.System, t *trace.Trace, envs []expr.MapEnv) error {
	ok, err := expr.EvalBool(sys.InitExpr(), envs[0], nil)
	if err != nil {
		return fmt.Errorf("witness: evaluating INIT: %w", err)
	}
	if !ok {
		return fmt.Errorf("witness: state 0 violates INIT")
	}
	invar := sys.InvarExpr()
	for i, env := range envs {
		ok, err := expr.EvalBool(invar, env, nil)
		if err != nil {
			return fmt.Errorf("witness: evaluating INVAR at state %d: %w", i, err)
		}
		if !ok {
			return fmt.Errorf("witness: state %d violates INVAR", i)
		}
	}
	tr := sys.TransExpr()
	for i := 0; i+1 < len(envs); i++ {
		ok, err := expr.EvalBool(tr, envs[i], envs[i+1])
		if err != nil {
			return fmt.Errorf("witness: evaluating TRANS at step %d: %w", i, err)
		}
		if !ok {
			return fmt.Errorf("witness: transition %d -> %d violates TRANS", i, i+1)
		}
	}
	if t.IsLasso() {
		last := len(envs) - 1
		ok, err := expr.EvalBool(tr, envs[last], envs[t.LoopStart])
		if err != nil {
			return fmt.Errorf("witness: evaluating loop-closing TRANS: %w", err)
		}
		if !ok {
			return fmt.Errorf("witness: loop-closing transition %d -> %d violates TRANS", last, t.LoopStart)
		}
	}
	return nil
}

// holds evaluates an NNF formula at position 0 of the trace.
//
// For a lasso (loop >= 0) the trace denotes an infinite word and the
// semantics are exact: each subformula's satisfaction per position is
// computed bottom-up, with least (U) and greatest (R) fixpoints over
// the finitely many positions.
//
// For a plain finite prefix (loop < 0) the semantics are the
// conservative no-loop bounded semantics the BMC encoder uses: X at
// the last position is false, U needs its right operand within the
// prefix, and R needs an explicit release point — so a "true" answer
// means every infinite extension of the prefix satisfies the formula
// (an informative prefix), never a guess.
func holds(f *ltl.Formula, envs []expr.MapEnv, loop int) (bool, error) {
	n := len(envs)
	succ := func(i int) int {
		if i+1 < n {
			return i + 1
		}
		return loop // -1 on finite prefixes: no successor
	}
	sat := make(map[*ltl.Formula][]bool)
	// Subformulas is post-order, so operands are computed before the
	// formulas that use them.
	for _, g := range ltl.Subformulas(f) {
		row := make([]bool, n)
		switch g.Kind {
		case ltl.KindAtom:
			for i := range row {
				b, err := expr.EvalBool(g.Atom, envs[i], nil)
				if err != nil {
					return false, err
				}
				row[i] = b
			}
		case ltl.KindNot:
			// NNF pushes negation into atoms; pointwise negation of
			// anything temporal would be unsound under the conservative
			// finite-prefix semantics, so refuse it.
			if g.L.Kind != ltl.KindAtom {
				return false, fmt.Errorf("witness: formula not in negation normal form (negated %s)", g.L)
			}
			for i := range row {
				row[i] = !sat[g.L][i]
			}
		case ltl.KindAnd:
			for i := range row {
				row[i] = sat[g.L][i] && sat[g.R][i]
			}
		case ltl.KindOr:
			for i := range row {
				row[i] = sat[g.L][i] || sat[g.R][i]
			}
		case ltl.KindX:
			for i := range row {
				j := succ(i)
				row[i] = j >= 0 && sat[g.L][j]
			}
		case ltl.KindF:
			row = fixpoint(allTrue(n), sat[g.L], n, loop, false)
		case ltl.KindG:
			row = fixpoint(sat[g.L], nil, n, loop, true)
		case ltl.KindU:
			row = fixpoint(sat[g.L], sat[g.R], n, loop, false)
		case ltl.KindR:
			row = fixpoint(sat[g.R], sat[g.L], n, loop, true)
		default:
			return false, fmt.Errorf("witness: unsupported LTL kind %v", g.Kind)
		}
		sat[g] = row
	}
	return sat[f][0], nil
}

func allTrue(n int) []bool {
	row := make([]bool, n)
	for i := range row {
		row[i] = true
	}
	return row
}

// fixpoint computes the satisfaction row of an until- or
// release-shaped formula.
//
// Until (greatest=false): u(i) = b(i) ∨ (a(i) ∧ u(succ(i))) — least
// fixpoint, so b must actually be reached. With b nil (G as "false R
// g" degenerates the other way) it is unused.
//
// Release / Globally (greatest=true): r(i) = a(i) ∧ (b(i) ∨
// r(succ(i))) — greatest fixpoint on lassos. With b nil this is
// Globally: r(i) = a(i) ∧ r(succ(i)). On finite prefixes the missing
// successor contributes false, which yields exactly the conservative
// no-loop semantics: G is never satisfied, R needs an explicit release
// point b(i) inside the prefix.
func fixpoint(a, b []bool, n, loop int, greatest bool) []bool {
	at := func(row []bool, i int) bool { return row != nil && row[i] }
	row := make([]bool, n)
	if greatest {
		for i := range row {
			row[i] = true
		}
	}
	if loop < 0 {
		// Finite prefix: one backward pass, missing successor = false.
		for i := n - 1; i >= 0; i-- {
			next := i+1 < n && row[i+1]
			if greatest {
				row[i] = a[i] && (at(b, i) || next)
			} else {
				row[i] = at(b, i) || (a[i] && next)
			}
		}
		return row
	}
	succ := func(i int) int {
		if i+1 < n {
			return i + 1
		}
		return loop
	}
	// Lasso: iterate to the fixpoint; each pass propagates information
	// at least one position, so n+1 passes always converge.
	for pass := 0; pass <= n; pass++ {
		changed := false
		for i := n - 1; i >= 0; i-- {
			var v bool
			if greatest {
				v = a[i] && (at(b, i) || row[succ(i)])
			} else {
				v = at(b, i) || (a[i] && row[succ(i)])
			}
			if v != row[i] {
				row[i] = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return row
}

// ErrUncheckable is returned (wrapped) by ValidateCertificate when the
// system's state space is too large to check the certificate by direct
// enumeration. Callers should treat it as "skipped", not "failed".
var ErrUncheckable = errors.New("witness: state space too large to check certificate by direct evaluation")

// DefaultLimit is the default evaluation budget for
// ValidateCertificate: the total number of states and (state,
// successor) pairs it may evaluate.
const DefaultLimit = 1 << 21

// Certificate is the evidence an engine attaches to a Holds verdict on
// an invariant G(Property), checkable without trusting the engine.
type Certificate struct {
	// Kind names the producing argument: "k-induction", "bdd-reach".
	Kind string
	// Property is the state predicate p of the proved invariant G(p).
	Property *expr.Expr
	// Invariant, when non-nil, is an inductive strengthening Inv:
	// ValidateCertificate checks INIT∧INVAR ⟹ Inv, that Inv is closed
	// under TRANS (within INVAR), and Inv∧INVAR ⟹ p. When nil, the
	// certificate claims only "G(p) holds up to reachability" and is
	// checked by explicit breadth-first replay of the state space.
	Invariant *expr.Expr
	// Depth is the engine's concluding depth (induction depth, BFS
	// layer count) — informational.
	Depth int
}

// ValidateCertificate checks a Holds certificate by direct evaluation,
// spending at most limit expression-level state evaluations (limit <=
// 0 uses DefaultLimit). It returns nil when the certificate proves
// G(Property), an error wrapping ErrUncheckable when the state space
// exceeds the budget, and a descriptive error when the certificate
// does not check out — which means the producing engine is wrong or
// the certificate was corrupted.
func ValidateCertificate(sys *ts.System, c *Certificate, limit int) error {
	if c == nil {
		return fmt.Errorf("witness: nil certificate")
	}
	if c.Property == nil {
		return fmt.Errorf("witness: certificate has no property")
	}
	if limit <= 0 {
		limit = DefaultLimit
	}
	if size := sys.StateSpaceSize(); size == 0 || size > int64(limit) {
		return fmt.Errorf("%w (%d states, limit %d)", ErrUncheckable, sys.StateSpaceSize(), limit)
	}
	b := &budget{limit: limit}
	if c.Invariant != nil {
		return checkInductive(sys, c, b)
	}
	return checkReachable(sys, c, b)
}

// budget counts state evaluations; exhausted checks degrade to
// ErrUncheckable rather than running unbounded.
type budget struct{ spent, limit int }

func (b *budget) step() error {
	b.spent++
	if b.spent > b.limit {
		return fmt.Errorf("%w (budget of %d evaluations exhausted)", ErrUncheckable, b.limit)
	}
	return nil
}

// checkInductive verifies the three conditions of an inductive
// invariant certificate over every assignment of the (finite) state
// variables and parameters.
func checkInductive(sys *ts.System, c *Certificate, b *budget) error {
	vars := sys.AllVars()
	stateVars := sys.Vars()
	invar, trans, init := sys.InvarExpr(), sys.TransExpr(), sys.InitExpr()
	return forAll(vars, expr.MapEnv{}, func(cur expr.MapEnv) error {
		if err := b.step(); err != nil {
			return err
		}
		invOK, err := evalIn(c.Invariant, cur, nil)
		if err != nil {
			return err
		}
		invarOK, err := evalIn(invar, cur, nil)
		if err != nil {
			return err
		}
		// Condition 1: every initial state is in the invariant.
		if invarOK {
			initOK, err := evalIn(init, cur, nil)
			if err != nil {
				return err
			}
			if initOK && !invOK {
				return fmt.Errorf("witness: certificate invariant excludes the initial state %s", envString(vars, cur))
			}
		}
		if !invOK || !invarOK {
			return nil
		}
		// Condition 2: the invariant implies the property.
		propOK, err := evalIn(c.Property, cur, nil)
		if err != nil {
			return err
		}
		if !propOK {
			return fmt.Errorf("witness: certificate invariant admits property-violating state %s", envString(vars, cur))
		}
		// Condition 3: the invariant is closed under the transition
		// relation (parameters are frozen, so only state variables step).
		return forAll(stateVars, cloneEnv(cur), func(next expr.MapEnv) error {
			if err := b.step(); err != nil {
				return err
			}
			stepOK, err := evalIn(trans, cur, next)
			if err != nil {
				return err
			}
			if !stepOK {
				return nil
			}
			nInvarOK, err := evalIn(invar, next, nil)
			if err != nil {
				return err
			}
			if !nInvarOK {
				return nil
			}
			nInvOK, err := evalIn(c.Invariant, next, nil)
			if err != nil {
				return err
			}
			if !nInvOK {
				return fmt.Errorf("witness: certificate invariant is not inductive: step %s -> %s leaves it",
					envString(vars, cur), envString(stateVars, next))
			}
			return nil
		})
	})
}

// checkReachable replays the reachable state space breadth-first and
// requires every reached state to satisfy the certified property —
// the fallback check for certificates that carry no inductive
// strengthening (k-induction at depth > 0 proves G(p) without naming
// an inductive invariant in predicate form).
func checkReachable(sys *ts.System, c *Certificate, b *budget) error {
	vars := sys.AllVars()
	stateVars := sys.Vars()
	invar, trans, init := sys.InvarExpr(), sys.TransExpr(), sys.InitExpr()

	type node struct{ env expr.MapEnv }
	seen := make(map[string]bool)
	var queue []node
	visit := func(env expr.MapEnv) error {
		key := envString(vars, env)
		if seen[key] {
			return nil
		}
		seen[key] = true
		ok, err := evalIn(c.Property, env, nil)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("witness: reachable state violates the certified property: %s", key)
		}
		queue = append(queue, node{env: cloneEnv(env)})
		return nil
	}

	// Seed: every assignment satisfying INIT ∧ INVAR.
	err := forAll(vars, expr.MapEnv{}, func(env expr.MapEnv) error {
		if err := b.step(); err != nil {
			return err
		}
		initOK, err := evalIn(init, env, nil)
		if err != nil {
			return err
		}
		if !initOK {
			return nil
		}
		invarOK, err := evalIn(invar, env, nil)
		if err != nil {
			return err
		}
		if !invarOK {
			return nil
		}
		return visit(env)
	})
	if err != nil {
		return err
	}

	for len(queue) > 0 {
		cur := queue[0].env
		queue = queue[1:]
		err := forAll(stateVars, cloneEnv(cur), func(next expr.MapEnv) error {
			if err := b.step(); err != nil {
				return err
			}
			stepOK, err := evalIn(trans, cur, next)
			if err != nil {
				return err
			}
			if !stepOK {
				return nil
			}
			invarOK, err := evalIn(invar, next, nil)
			if err != nil {
				return err
			}
			if !invarOK {
				return nil
			}
			return visit(next)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// forAll enumerates every total assignment of vars (overwriting their
// bindings in env, which may already bind other variables such as
// frozen parameters) and calls fn with the shared env. fn must not
// retain env without cloning it.
func forAll(vars []*expr.Var, env expr.MapEnv, fn func(expr.MapEnv) error) error {
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(vars) {
			return fn(env)
		}
		v := vars[i]
		vals, err := domainValues(v.T)
		if err != nil {
			return err
		}
		for _, val := range vals {
			env[v] = val
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// domainValues enumerates a finite type's values.
func domainValues(t expr.Type) ([]expr.Value, error) {
	switch t.Kind {
	case expr.KindBool:
		return []expr.Value{expr.BoolValue(false), expr.BoolValue(true)}, nil
	case expr.KindInt:
		out := make([]expr.Value, 0, t.Hi-t.Lo+1)
		for i := t.Lo; i <= t.Hi; i++ {
			out = append(out, expr.IntValue(i))
		}
		return out, nil
	case expr.KindEnum:
		out := make([]expr.Value, 0, len(t.Values))
		for _, s := range t.Values {
			out = append(out, expr.EnumValue(s))
		}
		return out, nil
	}
	return nil, fmt.Errorf("%w (infinite domain %s)", ErrUncheckable, t)
}

func evalIn(e *expr.Expr, cur, next expr.MapEnv) (bool, error) {
	var n expr.Env
	if next != nil {
		n = next
	}
	return expr.EvalBool(e, cur, n)
}

func cloneEnv(env expr.MapEnv) expr.MapEnv {
	cp := make(expr.MapEnv, len(env))
	for k, v := range env {
		cp[k] = v
	}
	return cp
}

// envString renders an assignment deterministically for error messages
// and visited-set keys.
func envString(vars []*expr.Var, env expr.MapEnv) string {
	s := ""
	for _, v := range vars {
		if s != "" {
			s += " "
		}
		s += v.Name + "=" + env[v].String()
	}
	return s
}
