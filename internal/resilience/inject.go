package resilience

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Fault is a failure mode the test-only injector can force at an
// instrumented site.
type Fault int

const (
	// FaultNone leaves the site untouched.
	FaultNone Fault = iota
	// FaultPanic makes At panic at the site, exercising the panic
	// isolation of the enclosing worker or engine goroutine.
	FaultPanic
	// FaultStall makes At block until the site's context is cancelled,
	// modelling a hung engine that never reports back.
	FaultStall
	// FaultExhaust is returned to the caller, which must react as if
	// its resource budget just ran out.
	FaultExhaust
	// FaultCorrupt is returned to the caller, which must deliberately
	// damage its output (e.g. the portfolio corrupts an engine's
	// counterexample trace) so downstream integrity checks — the
	// independent witness validator — can be exercised end to end.
	FaultCorrupt
)

func (f Fault) String() string {
	switch f {
	case FaultPanic:
		return "panic"
	case FaultStall:
		return "stall"
	case FaultExhaust:
		return "exhaust"
	case FaultCorrupt:
		return "corrupt"
	}
	return "none"
}

// faultTable is installed atomically so At stays a cheap nil check on
// production paths and race-clean under `go test -race`.
var faultTable atomic.Pointer[map[string]Fault]

// InjectFaults installs a site→fault table and returns a restore
// function; tests defer the restore (or register it with t.Cleanup).
// Installing replaces any previous table wholesale.
func InjectFaults(faults map[string]Fault) (restore func()) {
	cp := make(map[string]Fault, len(faults))
	for k, v := range faults {
		cp[k] = v
	}
	faultTable.Store(&cp)
	return func() { faultTable.Store(nil) }
}

// At is the fault-injection hook compiled into the runtime's
// instrumented sites (portfolio engines, pool workers, synthesis
// jobs). With no table installed — always, outside tests — it is a
// single atomic load. With a table installed it executes the
// configured fault: FaultPanic panics, FaultStall blocks until ctx is
// done (then returns FaultStall so the caller can fall into its normal
// cancellation path), and FaultExhaust is returned for the caller to
// interpret as budget exhaustion.
func At(ctx context.Context, site string) Fault {
	t := faultTable.Load()
	if t == nil {
		return FaultNone
	}
	f := (*t)[site]
	switch f {
	case FaultPanic:
		panic(fmt.Sprintf("resilience: injected panic at %s", site))
	case FaultStall:
		if ctx != nil {
			<-ctx.Done()
		}
	}
	return f
}
