// Package resilience is the fault-tolerance layer of the verification
// runtime: structured panic capture at goroutine boundaries, a retry
// policy that escalates resource budgets on inconclusive verdicts, a
// JSON checkpoint store for resumable sweeps, and a deterministic
// fault injector used by the tests to prove all of the above works.
//
// The package sits below internal/mc and internal/pool in the import
// graph (it depends only on the standard library), so every concurrent
// layer — the engine portfolio, the synthesis worker pool, the
// verdict-bench sweep — can share one vocabulary for "a worker died",
// "a budget ran out", and "this cell is already done".
package resilience

import (
	"fmt"
	"runtime/debug"
)

// EngineError is a panic recovered at an engine or worker boundary,
// carrying enough structure to report which engine died and why
// without taking the process down with it.
type EngineError struct {
	// Engine names the goroutine that panicked ("bdd", "k-induction",
	// "pool-worker[3]", ...).
	Engine string
	// Panic is the recovered panic value.
	Panic any
	// Stack is the panicking goroutine's stack trace, captured at
	// recovery time.
	Stack string
}

func (e *EngineError) Error() string {
	return fmt.Sprintf("resilience: engine %s panicked: %v", e.Engine, e.Panic)
}

// NewEngineError wraps a recovered panic value, capturing the current
// goroutine's stack. Call it directly inside the deferred recover so
// the stack still shows the panic site.
func NewEngineError(engine string, panicValue any) *EngineError {
	return &EngineError{Engine: engine, Panic: panicValue, Stack: string(debug.Stack())}
}

// RecoverTo is the one-line recovery boundary: deferred in a function
// with a named error return, it converts a panic into an *EngineError
// assigned through errp. Sentinel panic values the caller wants to
// keep propagating can be filtered with passthrough.
//
//	func Check(...) (res *Result, err error) {
//	    defer resilience.RecoverTo("bmc", &err)
//	    ...
//	}
func RecoverTo(engine string, errp *error, passthrough ...any) {
	r := recover()
	if r == nil {
		return
	}
	for _, p := range passthrough {
		if r == p {
			panic(r)
		}
	}
	*errp = NewEngineError(engine, r)
}

// RetryPolicy re-runs inconclusive (Unknown) verification attempts
// under exponentially escalating resource budgets: attempt i runs with
// the base budget scaled by Scale(i). The zero value never retries.
type RetryPolicy struct {
	// Attempts is the number of re-runs after the initial try
	// (0 = never retry).
	Attempts int
	// Factor is the per-retry budget multiplier (values < 2 are
	// treated as the default 2).
	Factor float64
	// MaxScale caps the cumulative multiplier so escalation cannot run
	// away on a sweep of thousands of cells (0 = uncapped).
	MaxScale float64
}

// Scale returns the budget multiplier for attempt i (attempt 0 is the
// initial run and always scales by 1).
func (p RetryPolicy) Scale(attempt int) float64 {
	if attempt <= 0 {
		return 1
	}
	f := p.Factor
	if f < 2 {
		f = 2
	}
	s := 1.0
	for i := 0; i < attempt; i++ {
		s *= f
		if p.MaxScale > 0 && s >= p.MaxScale {
			return p.MaxScale
		}
	}
	return s
}
