package resilience

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecoverToCapturesPanic(t *testing.T) {
	f := func() (err error) {
		defer RecoverTo("test-engine", &err)
		panic("boom")
	}
	err := f()
	var ee *EngineError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want *EngineError", err)
	}
	if ee.Engine != "test-engine" || ee.Panic != "boom" {
		t.Errorf("EngineError = %+v", ee)
	}
	if !strings.Contains(ee.Stack, "resilience") {
		t.Errorf("stack not captured: %q", ee.Stack[:min(len(ee.Stack), 80)])
	}
}

func TestRecoverToPassthrough(t *testing.T) {
	sentinel := errors.New("keep me")
	f := func() (err error) {
		defer RecoverTo("x", &err, sentinel)
		panic(sentinel)
	}
	defer func() {
		if recover() != sentinel {
			t.Error("sentinel panic was swallowed")
		}
	}()
	f()
	t.Fatal("unreachable: panic should have propagated")
}

func TestRecoverToNoPanic(t *testing.T) {
	f := func() (err error) {
		defer RecoverTo("x", &err)
		return nil
	}
	if err := f(); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}

func TestRetryPolicyScale(t *testing.T) {
	p := RetryPolicy{Attempts: 4, Factor: 2}
	for i, want := range []float64{1, 2, 4, 8, 16} {
		if got := p.Scale(i); got != want {
			t.Errorf("Scale(%d) = %v, want %v", i, got, want)
		}
	}
	capped := RetryPolicy{Attempts: 10, Factor: 4, MaxScale: 10}
	if got := capped.Scale(5); got != 10 {
		t.Errorf("capped Scale(5) = %v, want 10", got)
	}
	var zero RetryPolicy
	if got := zero.Scale(1); got != 2 {
		t.Errorf("zero-policy Scale(1) = %v, want default factor 2", got)
	}
}

func TestInjectPanic(t *testing.T) {
	restore := InjectFaults(map[string]Fault{"site-a": FaultPanic})
	defer restore()
	func() {
		defer func() {
			r := recover()
			if r == nil || !strings.Contains(r.(string), "site-a") {
				t.Errorf("recover() = %v, want injected panic naming site-a", r)
			}
		}()
		At(context.Background(), "site-a")
		t.Error("unreachable: At should have panicked")
	}()
	// Uninstrumented sites stay untouched while the table is live.
	if f := At(context.Background(), "site-b"); f != FaultNone {
		t.Errorf("At(site-b) = %v, want none", f)
	}
	restore()
	if f := At(context.Background(), "site-a"); f != FaultNone {
		t.Errorf("after restore, At(site-a) = %v, want none", f)
	}
}

func TestInjectStallBlocksUntilCancel(t *testing.T) {
	restore := InjectFaults(map[string]Fault{"slow": FaultStall})
	defer restore()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Fault, 1)
	go func() { done <- At(ctx, "slow") }()
	select {
	case <-done:
		t.Fatal("stalled site returned before cancellation")
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case f := <-done:
		if f != FaultStall {
			t.Errorf("At = %v, want FaultStall", f)
		}
	case <-time.After(time.Second):
		t.Fatal("stalled site never woke up after cancellation")
	}
}

func TestInjectExhaust(t *testing.T) {
	restore := InjectFaults(map[string]Fault{"b": FaultExhaust})
	defer restore()
	if f := At(context.Background(), "b"); f != FaultExhaust {
		t.Errorf("At = %v, want FaultExhaust", f)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.json")
	type cell struct {
		Verdict string `json:"verdict"`
	}
	c, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Mark("a", cell{"holds"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Mark("b", cell{"violated"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// A resumed run sees both cells; a fresh run sees none.
	r, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("resumed Len = %d, want 2", r.Len())
	}
	var got cell
	if !r.Lookup("a", &got) || got.Verdict != "holds" {
		t.Errorf("Lookup(a) = %+v", got)
	}
	if r.Lookup("missing", &got) {
		t.Error("Lookup(missing) reported present")
	}
	fresh, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 0 {
		t.Errorf("fresh Len = %d, want 0", fresh.Len())
	}
}

func TestCheckpointCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(path, true); err == nil {
		t.Fatal("resume from corrupt checkpoint: want error")
	}
	// Without resume the corrupt file is ignored and overwritten.
	c, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Mark("k", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(path, true); err != nil {
		t.Fatalf("checkpoint not repaired by fresh run: %v", err)
	}
}

func TestCheckpointConcurrentMarks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.json")
	c, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	c.FlushEvery = 4
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := c.Mark(string(rune('a'+i%26))+string(rune('0'+i/26)), i); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 32 {
		t.Errorf("Len = %d, want 32", r.Len())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
