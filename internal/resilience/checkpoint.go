package resilience

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Checkpoint persists completed work cells of a long-running sweep so
// a crashed or killed run can resume without redoing them. The on-disk
// form is a single JSON object mapping cell keys to caller-defined
// payloads; writes go through a temp-file rename, so the file is
// always a complete, parseable snapshot even if the process dies
// mid-flush. All methods are safe for concurrent use by pool workers.
type Checkpoint struct {
	path string

	mu    sync.Mutex
	cells map[string]json.RawMessage
	dirty int
	// FlushEvery controls how many Marks accumulate before an
	// automatic flush (default 1: flush on every completed cell, the
	// safest choice for crash recovery; sweeps with very cheap cells
	// can raise it). Set before the first Mark.
	FlushEvery int
}

// OpenCheckpoint opens or creates the checkpoint file at path. With
// resume set, an existing file's cells are loaded and reported as
// already done; without it the checkpoint starts empty and the first
// flush overwrites whatever was there. A missing file is not an error
// in either mode.
func OpenCheckpoint(path string, resume bool) (*Checkpoint, error) {
	c := &Checkpoint{path: path, cells: make(map[string]json.RawMessage), FlushEvery: 1}
	if !resume {
		return c, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("resilience: reading checkpoint: %w", err)
	}
	if err := json.Unmarshal(data, &c.cells); err != nil {
		return nil, fmt.Errorf("resilience: checkpoint %s is corrupt: %w", path, err)
	}
	return c, nil
}

// Len reports how many completed cells the checkpoint holds.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cells)
}

// Lookup decodes the payload of a completed cell into out and reports
// whether the cell was present. A decode failure is reported as
// not-present so a resumed run recomputes the cell instead of failing.
func (c *Checkpoint) Lookup(key string, out any) bool {
	c.mu.Lock()
	raw, ok := c.cells[key]
	c.mu.Unlock()
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// Mark records a completed cell and flushes to disk when FlushEvery
// marks have accumulated.
func (c *Checkpoint) Mark(key string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("resilience: encoding checkpoint cell %q: %w", key, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cells[key] = raw
	c.dirty++
	every := c.FlushEvery
	if every <= 0 {
		every = 1
	}
	if c.dirty >= every {
		return c.flushLocked()
	}
	return nil
}

// Flush writes the current snapshot to disk unconditionally; call it
// once at the end of a sweep so the final cells are never lost.
func (c *Checkpoint) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

func (c *Checkpoint) flushLocked() error {
	// Stable key order keeps successive snapshots diffable.
	keys := make([]string, 0, len(c.cells))
	for k := range c.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make(map[string]json.RawMessage, len(c.cells))
	for _, k := range keys {
		ordered[k] = c.cells[k]
	}
	data, err := json.MarshalIndent(ordered, "", " ")
	if err != nil {
		return fmt.Errorf("resilience: encoding checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(c.path), ".ckpt-*")
	if err != nil {
		return fmt.Errorf("resilience: writing checkpoint: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("resilience: writing checkpoint: %w", werr)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resilience: committing checkpoint: %w", err)
	}
	c.dirty = 0
	return nil
}
