package smvlang

import (
	"fmt"
	"math/big"
	"strings"

	"verdict/internal/ctl"
	"verdict/internal/expr"
	"verdict/internal/ltl"
)

// elabExpr turns an untyped tree into a typed expression. hint guides
// bare-identifier resolution against enum types (so `mode = idle`
// resolves `idle` as a value of mode's type).
func (p *parser) elabExpr(n *node, hint *expr.Type) (*expr.Expr, error) {
	sys := p.prog.Sys
	switch n.op {
	case "TRUE":
		return expr.True(), nil
	case "FALSE":
		return expr.False(), nil
	case "num":
		return parseNumber(n.text)
	case "ident":
		if v, ok := sys.VarByName(n.text); ok {
			return v.Ref(), nil
		}
		if d, ok := sys.DefineByName(n.text); ok {
			return d, nil
		}
		if hint != nil && hint.Kind == expr.KindEnum && hint.EnumIndex(n.text) >= 0 {
			return expr.EnumConst(*hint, n.text), nil
		}
		return nil, fmt.Errorf("smvlang: line %d:%d: unknown identifier %q", n.line, n.col, n.text)
	case "next":
		v, ok := sys.VarByName(n.text)
		if !ok {
			return nil, fmt.Errorf("smvlang: line %d:%d: next() of unknown variable %q", n.line, n.col, n.text)
		}
		return v.Next(), nil
	case "not":
		k, err := p.elabExpr(n.kids[0], nil)
		if err != nil {
			return nil, err
		}
		return expr.Not(k), nil
	case "and", "or", "impl", "iff":
		l, err := p.elabExpr(n.kids[0], nil)
		if err != nil {
			return nil, err
		}
		r, err := p.elabExpr(n.kids[1], nil)
		if err != nil {
			return nil, err
		}
		switch n.op {
		case "and":
			return expr.And(l, r), nil
		case "or":
			return expr.Or(l, r), nil
		case "impl":
			return expr.Implies(l, r), nil
		default:
			return expr.Iff(l, r), nil
		}
	case "+", "-", "*", "/", "neg":
		if n.op == "neg" {
			k, err := p.elabExpr(n.kids[0], nil)
			if err != nil {
				return nil, err
			}
			return expr.Neg(k), nil
		}
		l, err := p.elabExpr(n.kids[0], nil)
		if err != nil {
			return nil, err
		}
		r, err := p.elabExpr(n.kids[1], nil)
		if err != nil {
			return nil, err
		}
		switch n.op {
		case "+":
			return expr.Add(l, r), nil
		case "-":
			return expr.Sub(l, r), nil
		case "*":
			return expr.Mul(l, r), nil
		default:
			return expr.Div(l, r), nil
		}
	case "ite":
		c, err := p.elabExpr(n.kids[0], nil)
		if err != nil {
			return nil, err
		}
		a, err := p.elabExpr(n.kids[1], hint)
		if err != nil {
			return nil, err
		}
		bt := a.Type()
		b, err := p.elabExpr(n.kids[2], &bt)
		if err != nil {
			return nil, err
		}
		return expr.Ite(c, a, b), nil
	case "count":
		args := make([]*expr.Expr, len(n.kids))
		for i, k := range n.kids {
			e, err := p.elabExpr(k, nil)
			if err != nil {
				return nil, err
			}
			args[i] = e
		}
		return expr.Count(args...), nil
	}
	if strings.HasPrefix(n.op, "cmp") {
		op := strings.TrimPrefix(n.op, "cmp")
		l, lerr := p.elabExpr(n.kids[0], nil)
		var r *expr.Expr
		var rerr error
		if lerr == nil {
			lt := l.Type()
			r, rerr = p.elabExpr(n.kids[1], &lt)
		} else {
			// Left side may be a bare enum value: resolve right first.
			r, rerr = p.elabExpr(n.kids[1], nil)
			if rerr == nil {
				rt := r.Type()
				l, lerr = p.elabExpr(n.kids[0], &rt)
			}
		}
		if lerr != nil {
			return nil, lerr
		}
		if rerr != nil {
			return nil, rerr
		}
		switch op {
		case "=":
			return expr.Eq(l, r), nil
		case "!=":
			return expr.Ne(l, r), nil
		case "<":
			return expr.Lt(l, r), nil
		case "<=":
			return expr.Le(l, r), nil
		case ">":
			return expr.Gt(l, r), nil
		case ">=":
			return expr.Ge(l, r), nil
		}
	}
	return nil, fmt.Errorf("smvlang: line %d:%d: %s is not valid in a state expression", n.line, n.col, n.op)
}

func parseNumber(text string) (*expr.Expr, error) {
	if strings.Contains(text, ".") {
		r, ok := new(big.Rat).SetString(text)
		if !ok {
			return nil, fmt.Errorf("smvlang: bad number %q", text)
		}
		return expr.RealConst(r), nil
	}
	var v int64
	if _, err := fmt.Sscanf(text, "%d", &v); err != nil {
		return nil, fmt.Errorf("smvlang: bad number %q", text)
	}
	return expr.IntConst(v), nil
}

// hasTemporal reports whether any temporal operator occurs in n.
func hasTemporal(n *node) bool {
	if strings.HasPrefix(n.op, "ltl") || strings.HasPrefix(n.op, "ctl") ||
		n.op == "U" || n.op == "R" {
		return true
	}
	for _, k := range n.kids {
		if hasTemporal(k) {
			return true
		}
	}
	return false
}

// elabLTL turns an untyped tree into an LTL formula: temporal-free
// subtrees become atoms.
func (p *parser) elabLTL(n *node) (*ltl.Formula, error) {
	if !hasTemporal(n) {
		e, err := p.elabExpr(n, nil)
		if err != nil {
			return nil, err
		}
		if e.Type().Kind != expr.KindBool {
			return nil, fmt.Errorf("smvlang: line %d:%d: LTL atom has type %s, want bool", n.line, n.col, e.Type())
		}
		return ltl.Atom(e), nil
	}
	bin := func(f func(a, b *ltl.Formula) *ltl.Formula) (*ltl.Formula, error) {
		l, err := p.elabLTL(n.kids[0])
		if err != nil {
			return nil, err
		}
		r, err := p.elabLTL(n.kids[1])
		if err != nil {
			return nil, err
		}
		return f(l, r), nil
	}
	switch n.op {
	case "not":
		k, err := p.elabLTL(n.kids[0])
		if err != nil {
			return nil, err
		}
		return ltl.Not(k), nil
	case "and":
		return bin(func(a, b *ltl.Formula) *ltl.Formula { return ltl.And(a, b) })
	case "or":
		return bin(func(a, b *ltl.Formula) *ltl.Formula { return ltl.Or(a, b) })
	case "impl":
		return bin(ltl.Implies)
	case "iff":
		return bin(func(a, b *ltl.Formula) *ltl.Formula {
			return ltl.And(ltl.Implies(a, b), ltl.Implies(b, a))
		})
	case "ltlX":
		k, err := p.elabLTL(n.kids[0])
		if err != nil {
			return nil, err
		}
		return ltl.X(k), nil
	case "ltlF":
		k, err := p.elabLTL(n.kids[0])
		if err != nil {
			return nil, err
		}
		return ltl.F(k), nil
	case "ltlG":
		k, err := p.elabLTL(n.kids[0])
		if err != nil {
			return nil, err
		}
		return ltl.G(k), nil
	case "U":
		return bin(ltl.U)
	case "R":
		return bin(ltl.R)
	}
	return nil, fmt.Errorf("smvlang: line %d:%d: %s is not valid in an LTL formula", n.line, n.col, n.op)
}

// elabCTL turns an untyped tree into a CTL formula.
func (p *parser) elabCTL(n *node) (*ctl.Formula, error) {
	if !hasTemporal(n) {
		e, err := p.elabExpr(n, nil)
		if err != nil {
			return nil, err
		}
		if e.Type().Kind != expr.KindBool {
			return nil, fmt.Errorf("smvlang: line %d:%d: CTL atom has type %s, want bool", n.line, n.col, e.Type())
		}
		return ctl.Atom(e), nil
	}
	un := func(f func(*ctl.Formula) *ctl.Formula) (*ctl.Formula, error) {
		k, err := p.elabCTL(n.kids[0])
		if err != nil {
			return nil, err
		}
		return f(k), nil
	}
	bin := func(f func(a, b *ctl.Formula) *ctl.Formula) (*ctl.Formula, error) {
		l, err := p.elabCTL(n.kids[0])
		if err != nil {
			return nil, err
		}
		r, err := p.elabCTL(n.kids[1])
		if err != nil {
			return nil, err
		}
		return f(l, r), nil
	}
	switch n.op {
	case "not":
		return un(ctl.Not)
	case "and":
		return bin(ctl.And)
	case "or":
		return bin(ctl.Or)
	case "impl":
		return bin(ctl.Implies)
	case "iff":
		return bin(func(a, b *ctl.Formula) *ctl.Formula {
			return ctl.And(ctl.Implies(a, b), ctl.Implies(b, a))
		})
	case "ctlAX":
		return un(ctl.AX)
	case "ctlAF":
		return un(ctl.AF)
	case "ctlAG":
		return un(ctl.AG)
	case "ctlEX":
		return un(ctl.EX)
	case "ctlEF":
		return un(ctl.EF)
	case "ctlEG":
		return un(ctl.EG)
	case "ctlAU":
		return bin(ctl.AU)
	case "ctlEU":
		return bin(ctl.EU)
	}
	return nil, fmt.Errorf("smvlang: line %d:%d: %s is not valid in a CTL formula", n.line, n.col, n.op)
}
