package smvlang

import (
	"strings"
	"testing"

	"verdict/internal/expr"
	"verdict/internal/ltl"
	"verdict/internal/mc"
	"verdict/internal/models/lbecmp"
	"verdict/internal/models/rollout"
	"verdict/internal/topo"
	"verdict/internal/ts"
)

func TestRenderRoundTripCounter(t *testing.T) {
	prog1, err := Parse(counterModel)
	if err != nil {
		t.Fatal(err)
	}
	text := Render(prog1)
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nrendered:\n%s", err, text)
	}
	// Semantic equivalence: check results agree on all specs.
	for i := range prog1.LTLSpecs {
		r1, err := mc.CheckLTL(prog1.Sys, prog1.LTLSpecs[i], mc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := mc.CheckLTL(prog2.Sys, prog2.LTLSpecs[i], mc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Status != r2.Status {
			t.Errorf("spec %d: original %v, round-tripped %v", i, r1.Status, r2.Status)
		}
	}
}

func TestRenderRoundTripRollout(t *testing.T) {
	m, err := rollout.Build(rollout.Config{Topo: topo.Test(), P: 1, K: 2, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	text := Render(&Program{Sys: m.Sys, LTLSpecs: nil})
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of rendered rollout model failed: %v", err)
	}
	// The round-tripped system must reproduce the Figure 5 violation.
	// Rebuild the property against the round-tripped system's macros.
	conv, ok := prog2.Sys.DefineByName("converged")
	if !ok {
		t.Fatal("round-trip lost the converged DEFINE")
	}
	avail, ok := prog2.Sys.DefineByName("available")
	if !ok {
		t.Fatal("round-trip lost the available DEFINE")
	}
	prop := expr.Implies(conv, expr.Ge(avail, expr.IntConst(1)))
	r, err := mc.KInduction(prog2.Sys, prop, mc.Options{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != mc.Violated {
		t.Fatalf("round-tripped rollout model: %v, want violated", r)
	}
}

func TestRenderRoundTripReals(t *testing.T) {
	// The LB model exercises rational constants (1/2, 3) and real
	// parameters; its render must re-parse to a model where the same
	// oscillation exists.
	m := lbecmp.Build(lbecmp.Default())
	text := Render(&Program{Sys: m.Sys})
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of rendered LB model failed: %v\n%s", err, text)
	}
	stable, ok := prog2.Sys.DefineByName("stable")
	if !ok {
		t.Fatal("round-trip lost the stable DEFINE")
	}
	// Build F(G(stable)) directly over the re-parsed macro.
	r, err := mc.BMC(prog2.Sys, ltl.F(ltl.G(ltl.Atom(stable))), mc.Options{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != mc.Violated {
		t.Fatalf("round-tripped LB model: %v, want violated", r)
	}
}

func TestRenderSpecs(t *testing.T) {
	prog, err := Parse(`
VAR x : 0..3;
INIT x = 0;
TRANS next(x) = x;
LTLSPEC G (x <= 3);
LTLSPEC (x = 0) U (x > 0);
CTLSPEC AG (x <= 3);
CTLSPEC E[x = 0 U x = 1];
`)
	if err != nil {
		t.Fatal(err)
	}
	text := Render(prog)
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if len(prog2.LTLSpecs) != 2 || len(prog2.CTLSpecs) != 2 {
		t.Fatalf("specs lost in round trip:\n%s", text)
	}
}

func TestRenderSanitizesModuleName(t *testing.T) {
	sys := ts.New("rollout/test topo!")
	sys.Bool("b")
	sys.AddTrans(expr.True())
	text := Render(&Program{Sys: sys})
	if !strings.Contains(text, "MODULE rollout_test_topo_") {
		t.Errorf("module name not sanitized:\n%s", strings.SplitN(text, "\n", 2)[0])
	}
	if _, err := Parse(text); err != nil {
		t.Fatalf("sanitized render failed to parse: %v", err)
	}
}
