package smvlang

import (
	"strings"
	"testing"

	"verdict/internal/expr"
	"verdict/internal/ltl"
	"verdict/internal/mc"
	"verdict/internal/models/lbecmp"
	"verdict/internal/models/rollout"
	"verdict/internal/topo"
	"verdict/internal/ts"
)

func TestRenderRoundTripCounter(t *testing.T) {
	prog1, err := Parse(counterModel)
	if err != nil {
		t.Fatal(err)
	}
	text := Render(prog1)
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nrendered:\n%s", err, text)
	}
	// Semantic equivalence: check results agree on all specs.
	for i := range prog1.LTLSpecs {
		r1, err := mc.CheckLTL(prog1.Sys, prog1.LTLSpecs[i], mc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := mc.CheckLTL(prog2.Sys, prog2.LTLSpecs[i], mc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Status != r2.Status {
			t.Errorf("spec %d: original %v, round-tripped %v", i, r1.Status, r2.Status)
		}
	}
}

func TestRenderRoundTripRollout(t *testing.T) {
	m, err := rollout.Build(rollout.Config{Topo: topo.Test(), P: 1, K: 2, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	text := Render(&Program{Sys: m.Sys, LTLSpecs: nil})
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of rendered rollout model failed: %v", err)
	}
	// The round-tripped system must reproduce the Figure 5 violation.
	// Rebuild the property against the round-tripped system's macros.
	conv, ok := prog2.Sys.DefineByName("converged")
	if !ok {
		t.Fatal("round-trip lost the converged DEFINE")
	}
	avail, ok := prog2.Sys.DefineByName("available")
	if !ok {
		t.Fatal("round-trip lost the available DEFINE")
	}
	prop := expr.Implies(conv, expr.Ge(avail, expr.IntConst(1)))
	r, err := mc.KInduction(prog2.Sys, prop, mc.Options{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != mc.Violated {
		t.Fatalf("round-tripped rollout model: %v, want violated", r)
	}
}

func TestRenderRoundTripReals(t *testing.T) {
	// The LB model exercises rational constants (1/2, 3) and real
	// parameters; its render must re-parse to a model where the same
	// oscillation exists.
	m := lbecmp.Build(lbecmp.Default())
	text := Render(&Program{Sys: m.Sys})
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of rendered LB model failed: %v\n%s", err, text)
	}
	stable, ok := prog2.Sys.DefineByName("stable")
	if !ok {
		t.Fatal("round-trip lost the stable DEFINE")
	}
	// Build F(G(stable)) directly over the re-parsed macro.
	r, err := mc.BMC(prog2.Sys, ltl.F(ltl.G(ltl.Atom(stable))), mc.Options{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != mc.Violated {
		t.Fatalf("round-tripped LB model: %v, want violated", r)
	}
}

func TestRenderSpecs(t *testing.T) {
	prog, err := Parse(`
VAR x : 0..3;
INIT x = 0;
TRANS next(x) = x;
LTLSPEC G (x <= 3);
LTLSPEC (x = 0) U (x > 0);
CTLSPEC AG (x <= 3);
CTLSPEC E[x = 0 U x = 1];
`)
	if err != nil {
		t.Fatal(err)
	}
	text := Render(prog)
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if len(prog2.LTLSpecs) != 2 || len(prog2.CTLSpecs) != 2 {
		t.Fatalf("specs lost in round trip:\n%s", text)
	}
}

// TestRenderDeterministic guards the cache-key foundation: rendering
// the same *ts.System twice yields identical bytes, and two
// structurally equal systems built with different declaration orders
// render to identical bytes (sorted var/param/define emission).
func TestRenderDeterministic(t *testing.T) {
	build := func(order []string) *ts.System {
		sys := ts.New("det")
		decls := map[string]func(){
			"zeta":  func() { sys.Int("zeta", 0, 3) },
			"alpha": func() { sys.Bool("alpha") },
			"mid":   func() { sys.Enum("mid", "a", "b") },
		}
		for _, n := range order {
			decls[n]()
		}
		sys.IntParam("pZ", 0, 2)
		sys.BoolParam("pA")
		z, _ := sys.VarByName("zeta")
		a, _ := sys.VarByName("alpha")
		sys.Define("zmacro", expr.Ge(z.Ref(), expr.IntConst(1)))
		sys.Define("amacro", a.Ref())
		sys.AddInit(expr.Eq(z.Ref(), expr.IntConst(0)))
		sys.AddTrans(expr.Eq(z.Next(), z.Ref()))
		return sys
	}
	s1 := build([]string{"zeta", "alpha", "mid"})
	s2 := build([]string{"mid", "alpha", "zeta"})
	r1a := Render(&Program{Sys: s1})
	r1b := Render(&Program{Sys: s1})
	r2 := Render(&Program{Sys: s2})
	if r1a != r1b {
		t.Fatalf("rendering the same system twice differs:\n%s\n---\n%s", r1a, r1b)
	}
	if r1a != r2 {
		t.Fatalf("declaration order leaked into the render:\n%s\n---\n%s", r1a, r2)
	}
	for _, want := range []string{"VAR\n  alpha", "DEFINE\n  amacro", "PARAM\n  pA"} {
		if !strings.Contains(r1a, want) {
			t.Errorf("emission not sorted: missing %q in\n%s", want, r1a)
		}
	}
}

// TestRenderParseRenderFixpoint: Canonical must be a render∘parse
// fixpoint, for a hand-written model and for library builders — the
// property that makes it usable as a content-address.
func TestRenderParseRenderFixpoint(t *testing.T) {
	progs := map[string]*Program{"counter": mustParse(t, counterModel)}
	m, err := rollout.Build(rollout.Config{Topo: topo.Test(), P: 1, K: 2, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	progs["rollout"] = &Program{Sys: m.Sys}
	progs["lbecmp"] = &Program{Sys: lbecmp.Build(lbecmp.Default()).Sys}
	for name, prog := range progs {
		canon, err := Canonical(prog)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		reparsed, err := Parse(canon)
		if err != nil {
			t.Fatalf("%s: canonical form does not re-parse: %v\n%s", name, err, canon)
		}
		if again := Render(reparsed); canon != again {
			t.Errorf("%s: canonical render is not a fixpoint:\n%s\n---\n%s", name, canon, again)
		}
		// For a program that came out of the parser, Render alone is
		// already canonical.
		if fromParse := Render(reparsed); fromParse != canon {
			t.Errorf("%s: Render of a parsed program differs from Canonical", name)
		}
	}
}

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestRenderSanitizesModuleName(t *testing.T) {
	sys := ts.New("rollout/test topo!")
	sys.Bool("b")
	sys.AddTrans(expr.True())
	text := Render(&Program{Sys: sys})
	if !strings.Contains(text, "MODULE rollout_test_topo_") {
		t.Errorf("module name not sanitized:\n%s", strings.SplitN(text, "\n", 2)[0])
	}
	if _, err := Parse(text); err != nil {
		t.Fatalf("sanitized render failed to parse: %v", err)
	}
}
