package smvlang

import (
	"fmt"
	"strings"

	"verdict/internal/ctl"
	"verdict/internal/expr"
	"verdict/internal/ltl"
)

// Render serializes a program back into the textual language. The
// output re-parses to an equivalent model: rational constants print as
// divisions (3/2 parses to the same exact value), DEFINE bodies are
// kept for documentation, and constraints print fully expanded (the
// expression trees do not record textual macro references).
//
// Limitation: a bare enum constant is only resolvable in a comparison
// against an enum-typed expression, so models whose ite() branches
// return enum constants render to text that will not re-parse; the
// built-in model library avoids that shape.
func Render(prog *Program) string {
	var b strings.Builder
	sys := prog.Sys
	fmt.Fprintf(&b, "MODULE %s\n", sanitizeName(sys.Name))

	if vars := sys.Vars(); len(vars) > 0 {
		b.WriteString("VAR\n")
		for _, v := range vars {
			fmt.Fprintf(&b, "  %s : %s;\n", v.Name, renderType(v.T))
		}
	}
	if params := sys.Params(); len(params) > 0 {
		b.WriteString("PARAM\n")
		for _, p := range params {
			fmt.Fprintf(&b, "  %s : %s;\n", p.Name, renderType(p.T))
		}
	}
	if names := sys.DefineNames(); len(names) > 0 {
		b.WriteString("DEFINE\n")
		for _, n := range names {
			d, _ := sys.DefineByName(n)
			fmt.Fprintf(&b, "  %s := %s;\n", n, renderExpr(d))
		}
	}
	section := func(name string, e *expr.Expr) {
		if e.IsTrue() {
			return
		}
		fmt.Fprintf(&b, "%s\n  %s;\n", name, renderExpr(e))
	}
	section("INIT", sys.InitExpr())
	section("TRANS", sys.TransExpr())
	section("INVAR", sys.InvarExpr())
	for _, f := range sys.Fairness() {
		fmt.Fprintf(&b, "FAIRNESS\n  %s;\n", renderExpr(f))
	}
	for _, spec := range prog.LTLSpecs {
		fmt.Fprintf(&b, "LTLSPEC\n  %s;\n", renderLTL(spec))
	}
	for _, spec := range prog.CTLSpecs {
		fmt.Fprintf(&b, "CTLSPEC\n  %s;\n", renderCTL(spec))
	}
	return b.String()
}

// sanitizeName keeps module names lexable (the builders use names like
// "rollout/test").
func sanitizeName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "main"
	}
	return string(out)
}

func renderType(t expr.Type) string {
	switch t.Kind {
	case expr.KindBool:
		return "boolean"
	case expr.KindInt:
		return fmt.Sprintf("%d..%d", t.Lo, t.Hi)
	case expr.KindEnum:
		return "{" + strings.Join(t.Values, ", ") + "}"
	case expr.KindReal:
		return "real"
	}
	return "?"
}

// renderExpr reuses the expression printer, whose operator spellings
// match the grammar (rationals print as a/b which re-parses as exact
// division).
func renderExpr(e *expr.Expr) string { return e.String() }

func renderLTL(f *ltl.Formula) string { return f.String() }

func renderCTL(f *ctl.Formula) string { return f.String() }
