package smvlang

import (
	"fmt"
	"sort"
	"strings"

	"verdict/internal/ctl"
	"verdict/internal/expr"
	"verdict/internal/ltl"
)

// Render serializes a program back into the textual language. The
// output re-parses to an equivalent model: rational constants print as
// divisions (3/2 parses to the same exact value), DEFINE bodies are
// kept for documentation, and constraints print fully expanded (the
// expression trees do not record textual macro references).
//
// The output is canonical: variables, parameters, and DEFINEs are
// emitted sorted by name rather than in declaration order, so two
// structurally equal systems render to identical bytes regardless of
// build order, and render→parse→render is a fixpoint. verdictd relies
// on this as the content-address of its result cache. Sorting DEFINEs
// is safe because bodies print fully macro-expanded — a DEFINE never
// textually references another DEFINE.
//
// Limitation: a bare enum constant is only resolvable in a comparison
// against an enum-typed expression, so models whose ite() branches
// return enum constants render to text that will not re-parse; the
// built-in model library avoids that shape.
func Render(prog *Program) string {
	var b strings.Builder
	sys := prog.Sys
	fmt.Fprintf(&b, "MODULE %s\n", sanitizeName(sys.Name))

	if vars := sortedVars(sys.Vars()); len(vars) > 0 {
		b.WriteString("VAR\n")
		for _, v := range vars {
			fmt.Fprintf(&b, "  %s : %s;\n", v.Name, renderType(v.T))
		}
	}
	if params := sortedVars(sys.Params()); len(params) > 0 {
		b.WriteString("PARAM\n")
		for _, p := range params {
			fmt.Fprintf(&b, "  %s : %s;\n", p.Name, renderType(p.T))
		}
	}
	if names := sys.DefineNames(); len(names) > 0 {
		names = append([]string(nil), names...)
		sort.Strings(names)
		b.WriteString("DEFINE\n")
		for _, n := range names {
			d, _ := sys.DefineByName(n)
			fmt.Fprintf(&b, "  %s := %s;\n", n, renderExpr(d))
		}
	}
	section := func(name string, e *expr.Expr) {
		if e.IsTrue() {
			return
		}
		fmt.Fprintf(&b, "%s\n  %s;\n", name, renderExpr(e))
	}
	section("INIT", sys.InitExpr())
	section("TRANS", sys.TransExpr())
	section("INVAR", sys.InvarExpr())
	for _, f := range sys.Fairness() {
		fmt.Fprintf(&b, "FAIRNESS\n  %s;\n", renderExpr(f))
	}
	for _, spec := range prog.LTLSpecs {
		fmt.Fprintf(&b, "LTLSPEC\n  %s;\n", renderLTL(spec))
	}
	for _, spec := range prog.CTLSpecs {
		fmt.Fprintf(&b, "CTLSPEC\n  %s;\n", renderCTL(spec))
	}
	return b.String()
}

// Canonical returns the canonical textual form of a program: the
// byte-deterministic content-address verdictd caches results under.
// Render alone is already canonical for parsed programs; for systems
// built through the Go API one parse→render round normalizes tree
// shapes the parser would rebuild differently (n-ary sums flatten to
// "a + b + c" but re-parse left-nested as "((a + b) + c)"). After that
// round, render∘parse is a fixpoint, so equal canonical strings mean
// equal models as far as the engines are concerned.
func Canonical(prog *Program) (string, error) {
	text := Render(prog)
	re, err := Parse(text)
	if err != nil {
		return "", fmt.Errorf("smvlang: render of %q does not re-parse: %w", prog.Sys.Name, err)
	}
	return Render(re), nil
}

// sortedVars returns the variables ordered by name without mutating
// the system's declaration-order slice.
func sortedVars(vs []*expr.Var) []*expr.Var {
	out := append([]*expr.Var(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// sanitizeName keeps module names lexable (the builders use names like
// "rollout/test").
func sanitizeName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "main"
	}
	return string(out)
}

func renderType(t expr.Type) string {
	switch t.Kind {
	case expr.KindBool:
		return "boolean"
	case expr.KindInt:
		return fmt.Sprintf("%d..%d", t.Lo, t.Hi)
	case expr.KindEnum:
		return "{" + strings.Join(t.Values, ", ") + "}"
	case expr.KindReal:
		return "real"
	}
	return "?"
}

// renderExpr reuses the expression printer, whose operator spellings
// match the grammar (rationals print as a/b which re-parses as exact
// division).
func renderExpr(e *expr.Expr) string { return e.String() }

func renderLTL(f *ltl.Formula) string { return f.String() }

func renderCTL(f *ctl.Formula) string { return f.String() }
