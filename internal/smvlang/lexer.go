// Package smvlang implements verdict's textual modeling language, an
// SMV-like notation for parametric transition systems:
//
//	MODULE main
//	VAR
//	  x : 0..7;
//	  mode : {idle, busy};
//	  ok : boolean;
//	  load : real;
//	PARAM
//	  p : 1..4;
//	DEFINE
//	  stable := x = 0 | ok;
//	INIT x = 0;
//	TRANS next(x) = x + 1;
//	INVAR x <= 7;
//	FAIRNESS ok;
//	LTLSPEC G (stable -> F ok);
//	CTLSPEC AG (x <= 5);
//
// The paper models its case studies directly in NuXMV's input
// language; this package plays that role for verdict — the CLI loads
// .vsmv files, and the model library renders to it.
package smvlang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber // integer or decimal
	tokOp     // operators and punctuation
	tokKeyword
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

var keywords = map[string]bool{
	"MODULE": true, "VAR": true, "PARAM": true, "DEFINE": true,
	"INIT": true, "TRANS": true, "INVAR": true, "FAIRNESS": true,
	"LTLSPEC": true, "CTLSPEC": true, "boolean": true, "real": true,
	"TRUE": true, "FALSE": true, "next": true, "count": true, "ite": true,
}

// operators sorted longest-first for maximal munch.
var operators = []string{
	"<->", "->", "<=", ">=", "!=", "..", ":=",
	"&", "|", "!", "=", "<", ">", "+", "-", "*", "/",
	"(", ")", "{", "}", "[", "]", ",", ";", ":",
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.advance(1)
		case c == ' ' || c == '\t' || c == '\r':
			l.advance(1)
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case unicode.IsDigit(rune(c)):
			l.lexNumber()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		default:
			if !l.lexOp() {
				return nil, fmt.Errorf("smvlang: line %d:%d: unexpected character %q", l.line, l.col, string(c))
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, line: l.line, col: l.col})
	return l.toks, nil
}

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) emit(kind tokKind, text string, line, col int) {
	l.toks = append(l.toks, token{kind: kind, text: text, line: line, col: col})
}

func (l *lexer) lexNumber() {
	line, col, start := l.line, l.col, l.pos
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.advance(1)
	}
	// Decimal fraction — but not the ".." range operator.
	if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && unicode.IsDigit(rune(l.src[l.pos+1])) {
		l.advance(1)
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.advance(1)
		}
	}
	l.emit(tokNumber, l.src[start:l.pos], line, col)
}

func (l *lexer) lexIdent() {
	line, col, start := l.line, l.col, l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
			break
		}
		l.advance(1)
	}
	text := l.src[start:l.pos]
	if keywords[text] {
		l.emit(tokKeyword, text, line, col)
	} else {
		l.emit(tokIdent, text, line, col)
	}
}

func (l *lexer) lexOp() bool {
	for _, op := range operators {
		if strings.HasPrefix(l.src[l.pos:], op) {
			line, col := l.line, l.col
			l.advance(len(op))
			l.emit(tokOp, op, line, col)
			return true
		}
	}
	return false
}
