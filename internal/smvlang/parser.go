package smvlang

import (
	"fmt"
	"strings"

	"verdict/internal/ctl"
	"verdict/internal/expr"
	"verdict/internal/ltl"
	"verdict/internal/ts"
)

// Program is a parsed model: the transition system plus its specs.
type Program struct {
	Sys      *ts.System
	LTLSpecs []*ltl.Formula
	CTLSpecs []*ctl.Formula
}

// Parse elaborates a model written in verdict's SMV-like language.
// Within LTLSPEC/CTLSPEC sections the identifiers X, F, G, U, R (and
// A/E with brackets in CTL) are temporal operators and cannot name
// variables.
func Parse(src string) (prog *Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("smvlang: %v", r)
		}
	}()
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prog: &Program{Sys: ts.New("main")}}
	if err := p.parseProgram(); err != nil {
		return nil, err
	}
	if err := p.prog.Sys.Validate(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

// --- untyped syntax tree ---

type node struct {
	op        string // operator name, or "ident"/"num"
	text      string // ident/num payload
	kids      []*node
	line, col int
}

type parser struct {
	toks []token
	idx  int
	prog *Program
}

func (p *parser) cur() token  { return p.toks[p.idx] }
func (p *parser) next() token { t := p.toks[p.idx]; p.idx++; return t }

func (p *parser) accept(text string) bool {
	if p.cur().kind != tokEOF && p.cur().text == text {
		p.idx++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		t := p.cur()
		return fmt.Errorf("smvlang: line %d:%d: expected %q, found %q", t.line, t.col, text, t.text)
	}
	return nil
}

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("smvlang: line %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

var sectionKeywords = map[string]bool{
	"MODULE": true, "VAR": true, "PARAM": true, "DEFINE": true,
	"INIT": true, "TRANS": true, "INVAR": true, "FAIRNESS": true,
	"LTLSPEC": true, "CTLSPEC": true,
}

func (p *parser) atSection() bool {
	t := p.cur()
	return t.kind == tokEOF || (t.kind == tokKeyword && sectionKeywords[t.text])
}

func (p *parser) parseProgram() error {
	if p.accept("MODULE") {
		if p.cur().kind != tokIdent {
			return p.errf(p.cur(), "expected module name")
		}
		p.prog.Sys.Name = p.next().text
	}
	// First pass: declarations only, so constraints may reference
	// variables from any section order.
	save := p.idx
	for p.cur().kind != tokEOF {
		switch {
		case p.accept("VAR"):
			if err := p.parseDecls(false); err != nil {
				return err
			}
		case p.accept("PARAM"):
			if err := p.parseDecls(true); err != nil {
				return err
			}
		default:
			p.idx++
		}
	}
	p.idx = save
	// Second pass: everything else, in order.
	for p.cur().kind != tokEOF {
		t := p.next()
		switch t.text {
		case "VAR", "PARAM":
			p.skipDecls()
		case "DEFINE":
			if err := p.parseDefines(); err != nil {
				return err
			}
		case "INIT", "TRANS", "INVAR", "FAIRNESS":
			if err := p.parseConstraints(t.text); err != nil {
				return err
			}
		case "LTLSPEC":
			if err := p.parseLTLSpec(); err != nil {
				return err
			}
		case "CTLSPEC":
			if err := p.parseCTLSpec(); err != nil {
				return err
			}
		default:
			return p.errf(t, "expected a section keyword, found %q", t.text)
		}
	}
	return nil
}

// --- declarations ---

func (p *parser) parseDecls(param bool) error {
	for !p.atSection() {
		nameTok := p.next()
		if nameTok.kind != tokIdent {
			return p.errf(nameTok, "expected variable name, found %q", nameTok.text)
		}
		if err := p.expect(":"); err != nil {
			return err
		}
		t, err := p.parseType()
		if err != nil {
			return err
		}
		if err := p.expect(";"); err != nil {
			return err
		}
		sys := p.prog.Sys
		// Pre-validate here so the user gets a positioned diagnostic
		// instead of the raw panic ts would raise for the collision.
		if _, dup := sys.VarByName(nameTok.text); dup {
			return p.errf(nameTok, "duplicate variable %q", nameTok.text)
		}
		if _, dup := sys.DefineByName(nameTok.text); dup {
			return p.errf(nameTok, "variable %q collides with a DEFINE", nameTok.text)
		}
		switch {
		case param && t.Kind == expr.KindBool:
			sys.BoolParam(nameTok.text)
		case param && t.Kind == expr.KindInt:
			sys.IntParam(nameTok.text, t.Lo, t.Hi)
		case param && t.Kind == expr.KindReal:
			sys.RealParam(nameTok.text)
		case param && t.Kind == expr.KindEnum:
			return p.errf(nameTok, "enum parameters are not supported; use an int range")
		case t.Kind == expr.KindBool:
			sys.Bool(nameTok.text)
		case t.Kind == expr.KindInt:
			sys.Int(nameTok.text, t.Lo, t.Hi)
		case t.Kind == expr.KindEnum:
			sys.Enum(nameTok.text, t.Values...)
		case t.Kind == expr.KindReal:
			sys.Real(nameTok.text)
		}
	}
	return nil
}

func (p *parser) skipDecls() {
	for !p.atSection() {
		p.idx++
	}
}

func (p *parser) parseType() (expr.Type, error) {
	t := p.next()
	switch {
	case t.text == "boolean":
		return expr.Bool(), nil
	case t.text == "real":
		return expr.Real(), nil
	case t.text == "{":
		var values []string
		for {
			v := p.next()
			if v.kind != tokIdent {
				return expr.Type{}, p.errf(v, "expected enum value, found %q", v.text)
			}
			values = append(values, v.text)
			if p.accept("}") {
				break
			}
			if err := p.expect(","); err != nil {
				return expr.Type{}, err
			}
		}
		return expr.Enum(values...), nil
	default:
		lo, ok := p.parseSignedInt(t)
		if !ok {
			return expr.Type{}, p.errf(t, "expected a type, found %q", t.text)
		}
		if err := p.expect(".."); err != nil {
			return expr.Type{}, err
		}
		hiTok := p.next()
		hi, ok := p.parseSignedInt(hiTok)
		if !ok {
			return expr.Type{}, p.errf(hiTok, "expected range upper bound")
		}
		if lo > hi {
			return expr.Type{}, p.errf(t, "empty range %d..%d", lo, hi)
		}
		return expr.Int(lo, hi), nil
	}
}

func (p *parser) parseSignedInt(t token) (int64, bool) {
	neg := false
	if t.text == "-" {
		neg = true
		t = p.next()
	}
	if t.kind != tokNumber || strings.Contains(t.text, ".") {
		return 0, false
	}
	var v int64
	fmt.Sscanf(t.text, "%d", &v)
	if neg {
		v = -v
	}
	return v, true
}

// --- defines and constraints ---

func (p *parser) parseDefines() error {
	for !p.atSection() {
		nameTok := p.next()
		if nameTok.kind != tokIdent {
			return p.errf(nameTok, "expected DEFINE name, found %q", nameTok.text)
		}
		if err := p.expect(":="); err != nil {
			return err
		}
		n, err := p.parseFormula(modeExpr)
		if err != nil {
			return err
		}
		e, err := p.elabExpr(n, nil)
		if err != nil {
			return err
		}
		if err := p.expect(";"); err != nil {
			return err
		}
		if _, dup := p.prog.Sys.VarByName(nameTok.text); dup {
			return p.errf(nameTok, "DEFINE %q collides with a variable", nameTok.text)
		}
		if _, dup := p.prog.Sys.DefineByName(nameTok.text); dup {
			return p.errf(nameTok, "duplicate DEFINE %q", nameTok.text)
		}
		p.prog.Sys.Define(nameTok.text, e)
	}
	return nil
}

func (p *parser) parseConstraints(section string) error {
	for !p.atSection() {
		startTok := p.cur()
		n, err := p.parseFormula(modeExpr)
		if err != nil {
			return err
		}
		e, err := p.elabExpr(n, nil)
		if err != nil {
			return err
		}
		if err := p.expect(";"); err != nil {
			return err
		}
		// next() is only meaningful in TRANS, and every constraint must
		// be boolean; catch both here with a position instead of
		// letting ts panic without one.
		if section != "TRANS" && expr.HasNext(e) {
			return p.errf(startTok, "%s constraint must not mention next()", section)
		}
		if e.Type().Kind != expr.KindBool {
			return p.errf(startTok, "%s constraint has type %s, want bool", section, e.Type())
		}
		switch section {
		case "INIT":
			p.prog.Sys.AddInit(e)
		case "TRANS":
			p.prog.Sys.AddTrans(e)
		case "INVAR":
			p.prog.Sys.AddInvar(e)
		case "FAIRNESS":
			p.prog.Sys.AddFairness(e)
		}
	}
	return nil
}

func (p *parser) parseLTLSpec() error {
	n, err := p.parseFormula(modeLTL)
	if err != nil {
		return err
	}
	f, err := p.elabLTL(n)
	if err != nil {
		return err
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	p.prog.LTLSpecs = append(p.prog.LTLSpecs, f)
	return nil
}

func (p *parser) parseCTLSpec() error {
	n, err := p.parseFormula(modeCTL)
	if err != nil {
		return err
	}
	f, err := p.elabCTL(n)
	if err != nil {
		return err
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	p.prog.CTLSpecs = append(p.prog.CTLSpecs, f)
	return nil
}

// --- precedence-climbing formula parser ---

type parseMode int

const (
	modeExpr parseMode = iota
	modeLTL
	modeCTL
)

func (p *parser) parseFormula(m parseMode) (*node, error) { return p.pIff(m) }

func (p *parser) mk(op string, t token, kids ...*node) *node {
	return &node{op: op, kids: kids, line: t.line, col: t.col}
}

func (p *parser) pIff(m parseMode) (*node, error) {
	l, err := p.pImpl(m)
	if err != nil {
		return nil, err
	}
	for p.cur().text == "<->" {
		t := p.next()
		r, err := p.pImpl(m)
		if err != nil {
			return nil, err
		}
		l = p.mk("iff", t, l, r)
	}
	return l, nil
}

func (p *parser) pImpl(m parseMode) (*node, error) {
	l, err := p.pOr(m)
	if err != nil {
		return nil, err
	}
	if p.cur().text == "->" {
		t := p.next()
		r, err := p.pImpl(m) // right associative
		if err != nil {
			return nil, err
		}
		return p.mk("impl", t, l, r), nil
	}
	return l, nil
}

func (p *parser) pOr(m parseMode) (*node, error) {
	l, err := p.pAnd(m)
	if err != nil {
		return nil, err
	}
	for p.cur().text == "|" {
		t := p.next()
		r, err := p.pAnd(m)
		if err != nil {
			return nil, err
		}
		l = p.mk("or", t, l, r)
	}
	return l, nil
}

func (p *parser) pAnd(m parseMode) (*node, error) {
	l, err := p.pUntil(m)
	if err != nil {
		return nil, err
	}
	for p.cur().text == "&" {
		t := p.next()
		r, err := p.pUntil(m)
		if err != nil {
			return nil, err
		}
		l = p.mk("and", t, l, r)
	}
	return l, nil
}

func (p *parser) pUntil(m parseMode) (*node, error) {
	l, err := p.pUnary(m)
	if err != nil {
		return nil, err
	}
	for m == modeLTL && (p.cur().text == "U" || p.cur().text == "R") && p.cur().kind == tokIdent {
		t := p.next()
		r, err := p.pUnary(m)
		if err != nil {
			return nil, err
		}
		l = p.mk(t.text, t, l, r)
	}
	return l, nil
}

var ctlUnary = map[string]bool{"AX": true, "AF": true, "AG": true, "EX": true, "EF": true, "EG": true}

func (p *parser) pUnary(m parseMode) (*node, error) {
	t := p.cur()
	if t.text == "!" {
		p.next()
		k, err := p.pUnary(m)
		if err != nil {
			return nil, err
		}
		return p.mk("not", t, k), nil
	}
	if m == modeLTL && t.kind == tokIdent && (t.text == "X" || t.text == "F" || t.text == "G") {
		p.next()
		k, err := p.pUnary(m)
		if err != nil {
			return nil, err
		}
		return p.mk("ltl"+t.text, t, k), nil
	}
	if m == modeCTL && t.kind == tokIdent {
		if ctlUnary[t.text] {
			p.next()
			k, err := p.pUnary(m)
			if err != nil {
				return nil, err
			}
			return p.mk("ctl"+t.text, t, k), nil
		}
		if t.text == "A" || t.text == "E" {
			p.next()
			if err := p.expect("["); err != nil {
				return nil, err
			}
			l, err := p.pIff(m)
			if err != nil {
				return nil, err
			}
			ut := p.next()
			if ut.text != "U" {
				return nil, p.errf(ut, "expected U in %s[ ... U ... ]", t.text)
			}
			r, err := p.pIff(m)
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			return p.mk("ctl"+t.text+"U", t, l, r), nil
		}
	}
	return p.pCmp(m)
}

func (p *parser) pCmp(m parseMode) (*node, error) {
	l, err := p.pSum(m)
	if err != nil {
		return nil, err
	}
	switch p.cur().text {
	case "=", "!=", "<", "<=", ">", ">=":
		t := p.next()
		r, err := p.pSum(m)
		if err != nil {
			return nil, err
		}
		return p.mk("cmp"+t.text, t, l, r), nil
	}
	return l, nil
}

func (p *parser) pSum(m parseMode) (*node, error) {
	l, err := p.pProd(m)
	if err != nil {
		return nil, err
	}
	for p.cur().text == "+" || p.cur().text == "-" {
		t := p.next()
		r, err := p.pProd(m)
		if err != nil {
			return nil, err
		}
		l = p.mk(t.text, t, l, r)
	}
	return l, nil
}

func (p *parser) pProd(m parseMode) (*node, error) {
	l, err := p.pNeg(m)
	if err != nil {
		return nil, err
	}
	for p.cur().text == "*" || p.cur().text == "/" {
		t := p.next()
		r, err := p.pNeg(m)
		if err != nil {
			return nil, err
		}
		l = p.mk(t.text, t, l, r)
	}
	return l, nil
}

func (p *parser) pNeg(m parseMode) (*node, error) {
	if p.cur().text == "-" {
		t := p.next()
		k, err := p.pNeg(m)
		if err != nil {
			return nil, err
		}
		return p.mk("neg", t, k), nil
	}
	// Boolean negation also binds at the innermost level, so
	// `next(b) = !b` parses as expected.
	if p.cur().text == "!" {
		t := p.next()
		k, err := p.pNeg(m)
		if err != nil {
			return nil, err
		}
		return p.mk("not", t, k), nil
	}
	return p.pPrimary(m)
}

func (p *parser) pPrimary(m parseMode) (*node, error) {
	t := p.next()
	switch {
	case t.text == "(":
		n, err := p.pIff(m)
		if err != nil {
			return nil, err
		}
		return n, p.expect(")")
	case t.text == "TRUE" || t.text == "FALSE":
		return &node{op: t.text, line: t.line, col: t.col}, nil
	case t.text == "next":
		if err := p.expect("("); err != nil {
			return nil, err
		}
		id := p.next()
		if id.kind != tokIdent {
			return nil, p.errf(id, "next() takes a variable name")
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &node{op: "next", text: id.text, line: t.line, col: t.col}, nil
	case t.text == "count" || t.text == "ite":
		if err := p.expect("("); err != nil {
			return nil, err
		}
		n := &node{op: t.text, line: t.line, col: t.col}
		for {
			k, err := p.pIff(m)
			if err != nil {
				return nil, err
			}
			n.kids = append(n.kids, k)
			if p.accept(")") {
				break
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		if t.text == "ite" && len(n.kids) != 3 {
			return nil, p.errf(t, "ite takes exactly 3 arguments")
		}
		return n, nil
	case t.kind == tokNumber:
		return &node{op: "num", text: t.text, line: t.line, col: t.col}, nil
	case t.kind == tokIdent:
		return &node{op: "ident", text: t.text, line: t.line, col: t.col}, nil
	}
	return nil, p.errf(t, "unexpected token %q", t.text)
}
