package smvlang

import (
	"strings"
	"testing"

	"verdict/internal/expr"
	"verdict/internal/mc"
)

const counterModel = `
MODULE counter
VAR
  x : 0..7;
INIT
  x = 0;
TRANS
  next(x) = ite(x < 7, x + 1, 0);
LTLSPEC
  G (x <= 7);
LTLSPEC
  G (x <= 5);
CTLSPEC
  AG (x <= 7);
`

func TestParseCounter(t *testing.T) {
	prog, err := Parse(counterModel)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Sys.Name != "counter" {
		t.Errorf("module name %q", prog.Sys.Name)
	}
	if len(prog.Sys.Vars()) != 1 || len(prog.LTLSpecs) != 2 || len(prog.CTLSpecs) != 1 {
		t.Fatalf("vars=%d ltl=%d ctl=%d", len(prog.Sys.Vars()), len(prog.LTLSpecs), len(prog.CTLSpecs))
	}
	// Check the parsed model end to end.
	r, err := mc.CheckLTL(prog.Sys, prog.LTLSpecs[0], mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != mc.Holds {
		t.Errorf("G(x<=7): %v", r)
	}
	r, err = mc.CheckLTL(prog.Sys, prog.LTLSpecs[1], mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != mc.Violated {
		t.Errorf("G(x<=5): %v", r)
	}
	sym, err := mc.NewSym(prog.Sys, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := sym.CheckCTL(prog.CTLSpecs[0])
	if err != nil {
		t.Fatal(err)
	}
	if rc.Status != mc.Holds {
		t.Errorf("AG(x<=7): %v", rc)
	}
}

func TestParseEnumsAndDefines(t *testing.T) {
	prog, err := Parse(`
VAR
  mode : {idle, busy, failed};
  n : 0..3;
DEFINE
  ok := mode != failed;
INIT
  mode = idle & n = 0;
TRANS
  (mode = idle -> next(mode) = busy) &
  (mode = busy -> next(mode) = idle | next(mode) = failed) &
  (mode = failed -> next(mode) = failed) &
  next(n) = n;
LTLSPEC
  G ok;
`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mc.CheckLTL(prog.Sys, prog.LTLSpecs[0], mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != mc.Violated {
		t.Errorf("G ok should be violated (busy can fail): %v", r)
	}
	// Enum constant on the left of a comparison also resolves.
	if _, err := Parse(`
VAR m : {a, b};
INIT a = m;
TRANS next(m) = m;
`); err != nil {
		t.Errorf("left-side enum constant: %v", err)
	}
}

func TestParseParams(t *testing.T) {
	prog, err := Parse(`
VAR
  x : 0..10;
PARAM
  p : 1..4;
INIT x = 0;
TRANS next(x) = ite(x + p <= 10, x + p, 10);
LTLSPEC G (x != 7);
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Sys.Params()) != 1 {
		t.Fatalf("params = %d, want 1", len(prog.Sys.Params()))
	}
	res, err := mc.SynthesizeParams(prog.Sys, prog.LTLSpecs[0], mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Safe) != 3 || len(res.Unsafe) != 1 {
		t.Errorf("safe=%v unsafe=%v, want 3 safe / p=1 unsafe", res.Safe, res.Unsafe)
	}
}

func TestParseRealsAndDecimals(t *testing.T) {
	prog, err := Parse(`
VAR b : boolean;
PARAM t : real;
INIT t > 0.5 & !b;
TRANS next(b) = !b;
LTLSPEC F b;
`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mc.BMC(prog.Sys, prog.LTLSpecs[0], mc.Options{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	// F b holds (b flips); BMC must not find a counterexample.
	if r.Status == mc.Violated {
		t.Errorf("F b: %v", r)
	}
}

func TestParseCount(t *testing.T) {
	prog, err := Parse(`
VAR
  a : boolean;
  b : boolean;
  c : boolean;
INIT count(a, b, c) <= 1;
TRANS next(a) = a & next(b) = b & next(c) = c;
LTLSPEC G (count(a, b, c) <= 1);
`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mc.CheckLTL(prog.Sys, prog.LTLSpecs[0], mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != mc.Holds {
		t.Errorf("frozen count invariant: %v", r)
	}
}

func TestParseTemporalOperators(t *testing.T) {
	prog, err := Parse(`
VAR x : 0..3;
INIT x = 0;
TRANS next(x) = ite(x < 3, x + 1, 3);
LTLSPEC F G (x = 3);
LTLSPEC (x = 0) U (x > 0);
LTLSPEC X (x = 1);
LTLSPEC G (x = 1 -> F (x = 3));
`)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range prog.LTLSpecs {
		r, err := mc.CheckLTL(prog.Sys, spec, mc.Options{MaxDepth: 10})
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != mc.Holds {
			t.Errorf("spec %d (%s): %v, want holds", i, spec, r)
		}
	}
}

func TestParseCTLQuantifiers(t *testing.T) {
	prog, err := Parse(`
VAR x : 0..3;
INIT x = 0;
TRANS next(x) = x + 1 | next(x) = x;
CTLSPEC EF (x = 3);
CTLSPEC AG (x <= 3);
CTLSPEC E[x < 2 U x = 2];
CTLSPEC AF (x = 3);
`)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := mc.NewSym(prog.Sys, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []mc.Status{mc.Holds, mc.Holds, mc.Holds, mc.Violated} // AF fails: may stutter at x=0 forever
	for i, spec := range prog.CTLSpecs {
		r, err := sym.CheckCTL(spec)
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != want[i] {
			t.Errorf("CTL spec %d (%s): %v, want %v", i, spec, r.Status, want[i])
		}
	}
}

func TestParseFairness(t *testing.T) {
	prog, err := Parse(`
VAR x : 0..3;
INIT x = 0;
TRANS next(x) = x + 1 | next(x) = x;
FAIRNESS x = 3;
LTLSPEC F (x = 3);
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Sys.Fairness()) != 1 {
		t.Fatalf("fairness constraints = %d", len(prog.Sys.Fairness()))
	}
	sym, err := mc.NewSym(prog.Sys, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sym.CheckLTL(prog.LTLSpecs[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != mc.Holds {
		t.Errorf("F(x=3) under fairness: %v, want holds", r)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantErr string
	}{
		{"VAR x : 0..7; INIT y = 0; TRANS next(x) = x;", "unknown identifier"},
		{"VAR x : 7..0;", "empty range"},
		{"VAR x : 0..7; INIT x = 0; TRANS next(z) = 0;", "unknown variable"},
		{"VAR x : 0..7 INIT x = 0;", "expected"},
		{"FOO x;", "section keyword"},
		{"VAR x : 0..7; LTLSPEC G (x @ 1);", "unexpected character"},
		{"VAR x : 0..3; INIT x; TRANS next(x)=x;", "smvlang"}, // int used as bool
		{"PARAM e : {a, b};", "enum parameters"},
		{"VAR x : 0..3; CTLSPEC A[x = 0 R x = 1];", "expected U"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("no error for %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("error %q does not mention %q", err, c.wantErr)
		}
	}
}

func TestParseNegativeRanges(t *testing.T) {
	prog, err := Parse(`
VAR x : -3..3;
INIT x = -3;
TRANS next(x) = ite(x < 3, x + 1, -3);
LTLSPEC G (x >= -3);
`)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := prog.Sys.VarByName("x")
	if v.T.Lo != -3 || v.T.Hi != 3 {
		t.Errorf("range %d..%d", v.T.Lo, v.T.Hi)
	}
	r, err := mc.CheckLTL(prog.Sys, prog.LTLSpecs[0], mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != mc.Holds {
		t.Errorf("negative range invariant: %v", r)
	}
}

func TestCommentsIgnored(t *testing.T) {
	_, err := Parse(`
-- a full-line comment
VAR x : 0..1; -- trailing comment
INIT x = 0;
TRANS next(x) = x;
`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDefineUsedInSpec(t *testing.T) {
	prog, err := Parse(`
VAR x : 0..3;
DEFINE small := x <= 1;
INIT x = 0;
TRANS next(x) = x;
LTLSPEC G small;
`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mc.CheckLTL(prog.Sys, prog.LTLSpecs[0], mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != mc.Holds {
		t.Errorf("G small: %v", r)
	}
}

func TestVarAfterConstraintSection(t *testing.T) {
	// Declarations may appear after the constraints that use them.
	_, err := Parse(`
INIT x = 0;
VAR x : 0..3;
TRANS next(x) = x;
`)
	if err != nil {
		t.Fatalf("forward reference failed: %v", err)
	}
}

func TestTypeDerivation(t *testing.T) {
	prog, err := Parse(`
VAR x : 0..3;
INIT x = 0;
TRANS next(x) = x;
`)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := prog.Sys.VarByName("x")
	if v.T.Kind != expr.KindInt {
		t.Errorf("kind %v", v.T.Kind)
	}
}
