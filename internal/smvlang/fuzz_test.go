package smvlang

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// malformedCorpus returns the checked-in corpus of broken .vsmv files.
func malformedCorpus(t testing.TB) map[string]string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "malformed", "*.vsmv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no malformed corpus files found")
	}
	corpus := make(map[string]string, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		corpus[filepath.Base(p)] = string(data)
	}
	return corpus
}

// TestParseMalformedCorpus pins down that every corpus file is
// rejected with an ordinary error — LoadModel must never panic on
// operator-supplied model files, however mangled.
func TestParseMalformedCorpus(t *testing.T) {
	for name, src := range malformedCorpus(t) {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: malformed model accepted", name)
		} else if !strings.HasPrefix(err.Error(), "smvlang:") && !strings.HasPrefix(err.Error(), "ts:") {
			t.Errorf("%s: error lost its package prefix: %v", name, err)
		}
	}
}

// TestParseDiagnosticsPositioned checks that the pre-validation added
// for duplicate declarations and ill-typed constraints points at the
// offending token rather than failing later inside elaboration.
func TestParseDiagnosticsPositioned(t *testing.T) {
	cases := []struct {
		name, file, want string
	}{
		{"duplicate variable", "dup-var.vsmv", `line 4:3: duplicate variable "x"`},
		// Declarations are collected in a first pass, so the clash is
		// reported at the DEFINE site even though it precedes VAR.
		{"var collides with define", "var-define-clash.vsmv", `line 3:3: DEFINE "x" collides with a variable`},
		{"next outside TRANS", "next-in-invar.vsmv", "line 5:3: INVAR constraint must not mention next()"},
		{"non-bool constraint", "nonbool-init.vsmv", "line 5:3: INIT constraint has type 1..4, want bool"},
	}
	corpus := malformedCorpus(t)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(corpus[c.file])
			if err == nil {
				t.Fatal("parse succeeded")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestParseDuplicateDefineDiagnostics(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"duplicate DEFINE", "MODULE m\nDEFINE\n  d := 1;\n  d := 2;\n", `line 4:3: duplicate DEFINE "d"`},
		{"DEFINE collides with var", "MODULE m\nVAR\n  x : 0..3;\nDEFINE\n  x := 1;\n", `line 5:3: DEFINE "x" collides with a variable`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatal("parse succeeded")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

// FuzzParse drives the parser with arbitrary bytes. The property is
// purely "no panic, no hang": Parse either elaborates a model or
// returns an error. When a mutated input happens to parse, rendering
// and re-parsing it must also stay panic-free (the renderer is part of
// the same operator-facing surface).
func FuzzParse(f *testing.F) {
	f.Add(counterModel)
	for _, src := range malformedCorpus(f) {
		f.Add(src)
	}
	f.Add("MODULE m\nVAR\n  b : boolean;\nPARAM\n  p : 0..1;\nDEFINE\n  d := b & p = 1;\nINIT\n  !b;\nTRANS\n  next(b) = !b;\nINVAR\n  p <= 1;\nFAIRNESS\n  b;\nLTLSPEC\n  G F b;\nCTLSPEC\n  AG EF b;\n")
	f.Add("MODULE m\nVAR\n  e : {red, green, blue};\nINIT\n  e = red;\n")
	f.Add("\x00\xff MODULE \x80")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		if _, err := Parse(Render(prog)); err != nil {
			// Render has one documented enum-related caveat, so a
			// re-parse error is tolerated; a panic is not (it would
			// escape Parse's recover as a test crash).
			t.Skipf("render round-trip rejected: %v", err)
		}
	})
}
