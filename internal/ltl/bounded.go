package ltl

import (
	"fmt"

	"verdict/internal/cnf"
	"verdict/internal/sat"
)

// BoundedEncoder compiles the bounded (lasso) semantics of LTL over an
// unrolled path s_0 .. s_k. Frames[i] binds the state variables of
// step i. Formulas must be in negation normal form (see NNF); only
// atoms may carry negations.
//
// Two encodings exist: without a loop (finite-prefix witness — sound
// for reachability-style formulas, conservative for R/G) and with a
// back-loop s_{k+1} = s_l, which makes the path genuinely infinite and
// the semantics exact. The bounded model checker tries no-loop plus
// every loop index per depth.
type BoundedEncoder struct {
	Enc    *cnf.Encoder
	Frames []*cnf.Frame

	memo map[encKey]sat.Lit
}

type encKey struct {
	f    *Formula
	i, l int // l = -1 encodes the no-loop case
}

// NewBoundedEncoder wraps enc and the per-step frames.
func NewBoundedEncoder(enc *cnf.Encoder, frames []*cnf.Frame) *BoundedEncoder {
	return &BoundedEncoder{Enc: enc, Frames: frames, memo: make(map[encKey]sat.Lit)}
}

func (b *BoundedEncoder) k() int { return len(b.Frames) - 1 }

// EncodeNoLoop returns a literal implying f holds on the unrolled
// prefix under the conservative no-loop bounded semantics.
func (b *BoundedEncoder) EncodeNoLoop(f *Formula) sat.Lit {
	return b.encode(f, 0, -1)
}

// EncodeLoop returns a literal equivalent to f holding on the infinite
// lasso path that follows frames 0..k and loops from k back to l. The
// caller must separately assert the loop-closure constraint
// (state_k+1 == state_l via the transition relation).
func (b *BoundedEncoder) EncodeLoop(f *Formula, l int) sat.Lit {
	if l < 0 || l > b.k() {
		panic(fmt.Sprintf("ltl: loop index %d out of range [0,%d]", l, b.k()))
	}
	return b.encode(f, 0, l)
}

func (b *BoundedEncoder) encode(f *Formula, i, l int) sat.Lit {
	key := encKey{f, i, l}
	if lit, ok := b.memo[key]; ok {
		return lit
	}
	lit := b.compute(f, i, l)
	b.memo[key] = lit
	return lit
}

func (b *BoundedEncoder) compute(f *Formula, i, l int) sat.Lit {
	k := b.k()
	switch f.Kind {
	case KindAtom:
		return b.Enc.Lit(f.Atom, b.Frames[i], nil)
	case KindNot:
		// NNF guarantees the operand is an atom; in the loop case
		// literal negation is exact anyway.
		return b.encode(f.L, i, l).Not()
	case KindAnd:
		return b.Enc.AndLits(b.encode(f.L, i, l), b.encode(f.R, i, l))
	case KindOr:
		return b.Enc.OrLits(b.encode(f.L, i, l), b.encode(f.R, i, l))
	case KindX:
		if i < k {
			return b.encode(f.L, i+1, l)
		}
		if l < 0 {
			return b.Enc.False()
		}
		return b.encode(f.L, l, l)
	case KindF:
		start := i
		if l >= 0 && l < start {
			start = l
		}
		var disj []sat.Lit
		for j := start; j <= k; j++ {
			disj = append(disj, b.encode(f.L, j, l))
		}
		return b.Enc.OrLits(disj...)
	case KindG:
		if l < 0 {
			return b.Enc.False() // no finite witness for G
		}
		// On a lasso, G f = f at every position from min(i,l) on.
		start := i
		if l < start {
			start = l
		}
		var conj []sat.Lit
		for j := start; j <= k; j++ {
			conj = append(conj, b.encode(f.L, j, l))
		}
		return b.Enc.AndLits(conj...)
	case KindU:
		return b.until(
			func(j int) sat.Lit { return b.encode(f.L, j, l) },
			func(j int) sat.Lit { return b.encode(f.R, j, l) },
			i, l)
	case KindR:
		if l < 0 {
			// Conservative: require an explicit release point.
			var disj []sat.Lit
			for j := i; j <= k; j++ {
				var conj []sat.Lit
				for t := i; t <= j; t++ {
					conj = append(conj, b.encode(f.R, t, l))
				}
				conj = append(conj, b.encode(f.L, j, l))
				disj = append(disj, b.Enc.AndLits(conj...))
			}
			return b.Enc.OrLits(disj...)
		}
		// Exact dual on the infinite lasso: f R g = ¬(¬f U ¬g).
		return b.until(
			func(j int) sat.Lit { return b.encode(f.L, j, l).Not() },
			func(j int) sat.Lit { return b.encode(f.R, j, l).Not() },
			i, l).Not()
	}
	panic("ltl: bad kind in bounded encoding")
}

// until encodes the bounded semantics of (fL U fR) at position i.
func (b *BoundedEncoder) until(fl, fr func(int) sat.Lit, i, l int) sat.Lit {
	k := b.k()
	var disj []sat.Lit
	// Witness within [i, k].
	for j := i; j <= k; j++ {
		conj := []sat.Lit{fr(j)}
		for t := i; t < j; t++ {
			conj = append(conj, fl(t))
		}
		disj = append(disj, b.Enc.AndLits(conj...))
	}
	// Witness after wrapping through the loop: positions l..i-1.
	if l >= 0 {
		for j := l; j < i; j++ {
			conj := []sat.Lit{fr(j)}
			for t := i; t <= k; t++ {
				conj = append(conj, fl(t))
			}
			for t := l; t < j; t++ {
				conj = append(conj, fl(t))
			}
			disj = append(disj, b.Enc.AndLits(conj...))
		}
	}
	return b.Enc.OrLits(disj...)
}
