package ltl

import (
	"math/rand"
	"testing"

	"verdict/internal/cnf"
	"verdict/internal/expr"
	"verdict/internal/sat"
)

// refLasso evaluates an NNF formula at position 0 of the infinite
// lasso path states[0..k] with loop back to l, by fixpoint iteration
// over the finite position set (least fixpoint for U/F, greatest for
// R/G). It is the independent referee for the bounded encoding.
func refLasso(f *Formula, states []map[*expr.Var]expr.Value, l int) bool {
	n := len(states)
	succ := func(i int) int {
		if i+1 < n {
			return i + 1
		}
		return l
	}
	memo := map[*Formula][]bool{}
	var eval func(g *Formula) []bool
	eval = func(g *Formula) []bool {
		if v, ok := memo[g]; ok {
			return v
		}
		out := make([]bool, n)
		switch g.Kind {
		case KindAtom:
			for i := range out {
				v, err := expr.EvalBool(g.Atom, expr.MapEnv(states[i]), nil)
				if err != nil {
					panic(err)
				}
				out[i] = v
			}
		case KindNot:
			sub := eval(g.L)
			for i := range out {
				out[i] = !sub[i]
			}
		case KindAnd:
			a, b := eval(g.L), eval(g.R)
			for i := range out {
				out[i] = a[i] && b[i]
			}
		case KindOr:
			a, b := eval(g.L), eval(g.R)
			for i := range out {
				out[i] = a[i] || b[i]
			}
		case KindX:
			sub := eval(g.L)
			for i := range out {
				out[i] = sub[succ(i)]
			}
		case KindU, KindF:
			var a, b []bool
			if g.Kind == KindF {
				a = make([]bool, n)
				for i := range a {
					a[i] = true
				}
				b = eval(g.L)
			} else {
				a, b = eval(g.L), eval(g.R)
			}
			// Least fixpoint from false.
			for iter := 0; iter <= n; iter++ {
				for i := n - 1; i >= 0; i-- {
					out[i] = b[i] || (a[i] && out[succ(i)])
				}
			}
		case KindR, KindG:
			var a, b []bool
			if g.Kind == KindG {
				a = make([]bool, n) // all false (never released)
				b = eval(g.L)
			} else {
				a, b = eval(g.L), eval(g.R)
			}
			// Greatest fixpoint from true.
			for i := range out {
				out[i] = true
			}
			for iter := 0; iter <= n; iter++ {
				for i := n - 1; i >= 0; i-- {
					out[i] = b[i] && (a[i] || out[succ(i)])
				}
			}
		default:
			panic("refLasso: bad kind")
		}
		memo[g] = out
		return out
	}
	return eval(f)[0]
}

// TestBoundedLoopEncodingMatchesReference pins concrete lasso paths
// into SAT frames and compares EncodeLoop against refLasso on random
// NNF formulas.
func TestBoundedLoopEncodingMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	b1 := &expr.Var{Name: "b1", T: expr.Bool()}
	b2 := &expr.Var{Name: "b2", T: expr.Bool()}
	vars := []*expr.Var{b1, b2}

	var genF func(d int) *Formula
	genF = func(d int) *Formula {
		if d == 0 {
			v := vars[rng.Intn(2)]
			if rng.Intn(2) == 0 {
				return Atom(v.Ref())
			}
			return Atom(expr.Not(v.Ref()))
		}
		switch rng.Intn(7) {
		case 0:
			return And(genF(d-1), genF(d-1))
		case 1:
			return Or(genF(d-1), genF(d-1))
		case 2:
			return X(genF(d - 1))
		case 3:
			return U(genF(d-1), genF(d-1))
		case 4:
			return R(genF(d-1), genF(d-1))
		case 5:
			return F(genF(d - 1))
		default:
			return G(genF(d - 1))
		}
	}

	for trial := 0; trial < 150; trial++ {
		k := 1 + rng.Intn(4) // path length k+1
		l := rng.Intn(k + 1)
		states := make([]map[*expr.Var]expr.Value, k+1)
		for i := range states {
			states[i] = map[*expr.Var]expr.Value{
				b1: expr.BoolValue(rng.Intn(2) == 0),
				b2: expr.BoolValue(rng.Intn(2) == 0),
			}
		}
		f := genF(2)

		s := sat.New()
		enc := cnf.NewEncoder(s)
		frames := make([]*cnf.Frame, k+1)
		for i := range frames {
			frames[i] = enc.NewFrame(vars)
			// Pin the frame to the concrete state.
			for _, v := range vars {
				lit := enc.Lit(v.Ref(), frames[i], nil)
				if !states[i][v].B {
					lit = lit.Not()
				}
				s.AddClause(lit)
			}
		}
		benc := NewBoundedEncoder(enc, frames)
		w := benc.EncodeLoop(f, l)
		got := s.Solve(w) == sat.Sat
		want := refLasso(f, states, l)
		if got != want {
			t.Fatalf("trial %d: k=%d l=%d formula %s: encoded=%v ref=%v",
				trial, k, l, f, got, want)
		}
	}
}

// TestBoundedNoLoopSoundness: a no-loop witness implies every lasso
// completion of the prefix... for co-safety formulas the no-loop
// witness must agree with the reference on the lasso that stutters the
// last state (appending a self-loop can only add future positions,
// which preserves co-safety witnesses).
func TestBoundedNoLoopCoSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	b1 := &expr.Var{Name: "b1", T: expr.Bool()}
	vars := []*expr.Var{b1}

	var genCoSafe func(d int) *Formula
	genCoSafe = func(d int) *Formula {
		if d == 0 {
			if rng.Intn(2) == 0 {
				return Atom(b1.Ref())
			}
			return Atom(expr.Not(b1.Ref()))
		}
		switch rng.Intn(4) {
		case 0:
			return And(genCoSafe(d-1), genCoSafe(d-1))
		case 1:
			return Or(genCoSafe(d-1), genCoSafe(d-1))
		case 2:
			return X(genCoSafe(d - 1))
		default:
			return F(genCoSafe(d - 1))
		}
	}

	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(4)
		states := make([]map[*expr.Var]expr.Value, k+1)
		for i := range states {
			states[i] = map[*expr.Var]expr.Value{b1: expr.BoolValue(rng.Intn(2) == 0)}
		}
		f := genCoSafe(2)

		s := sat.New()
		enc := cnf.NewEncoder(s)
		frames := make([]*cnf.Frame, k+1)
		for i := range frames {
			frames[i] = enc.NewFrame(vars)
			lit := enc.Lit(b1.Ref(), frames[i], nil)
			if !states[i][b1].B {
				lit = lit.Not()
			}
			s.AddClause(lit)
		}
		benc := NewBoundedEncoder(enc, frames)
		w := benc.EncodeNoLoop(f)
		got := s.Solve(w) == sat.Sat
		// Reference on the stuttering lasso (loop at k).
		want := refLasso(f, states, k)
		if got && !want {
			t.Fatalf("trial %d: no-loop witness unsound for %s", trial, f)
		}
	}
}

func TestEncodeLoopRangeChecks(t *testing.T) {
	b1 := &expr.Var{Name: "b1", T: expr.Bool()}
	s := sat.New()
	enc := cnf.NewEncoder(s)
	frames := []*cnf.Frame{enc.NewFrame([]*expr.Var{b1})}
	benc := NewBoundedEncoder(enc, frames)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range loop index")
		}
	}()
	benc.EncodeLoop(Atom(b1.Ref()), 5)
}
