package ltl

import (
	"strings"
	"testing"

	"verdict/internal/expr"
)

func boolVar(name string) *expr.Var { return &expr.Var{Name: name, T: expr.Bool()} }

func TestConstructorsAndString(t *testing.T) {
	p := Atom(boolVar("p").Ref())
	q := Atom(boolVar("q").Ref())
	f := Implies(G(p), U(p, F(q)))
	s := f.String()
	for _, frag := range []string{"G", "U", "F", "p", "q"} {
		if !strings.Contains(s, frag) {
			t.Errorf("%q missing %q", s, frag)
		}
	}
}

func TestAtomRejectsNonBool(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x := &expr.Var{Name: "x", T: expr.Int(0, 3)}
	Atom(x.Ref())
}

func TestAtomRejectsNext(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := boolVar("b")
	Atom(expr.Eq(b.Next(), b.Ref()))
}

// nnfNoFGNot checks the NNF postcondition: no F, G, and Not only above
// atoms.
func nnfNoFGNot(t *testing.T, f *Formula) {
	t.Helper()
	switch f.Kind {
	case KindF, KindG:
		t.Errorf("NNF contains %v", f.Kind)
	case KindNot:
		if f.L.Kind != KindAtom {
			t.Errorf("NNF negation above non-atom: %s", f)
		}
	}
	if f.L != nil {
		nnfNoFGNot(t, f.L)
	}
	if f.R != nil {
		nnfNoFGNot(t, f.R)
	}
}

func TestNNFShapes(t *testing.T) {
	p := Atom(boolVar("p").Ref())
	q := Atom(boolVar("q").Ref())
	cases := []*Formula{
		Not(G(p)),
		Not(F(G(p))),
		Not(U(p, q)),
		Not(R(p, q)),
		Not(And(p, Not(Or(q, X(p))))),
		Implies(p, F(G(q))),
		Not(Implies(G(F(p)), G(F(q)))),
	}
	for _, f := range cases {
		nnfNoFGNot(t, f.NNF())
	}
}

func TestNNFDualities(t *testing.T) {
	p := Atom(boolVar("p").Ref())
	// ¬G p  =>  true U ¬p
	f := Not(G(p)).NNF()
	if f.Kind != KindU {
		t.Errorf("¬G p NNF kind = %v, want U", f.Kind)
	}
	// ¬F p  =>  false R ¬p
	f = Not(F(p)).NNF()
	if f.Kind != KindR {
		t.Errorf("¬F p NNF kind = %v, want R", f.Kind)
	}
	// Double negation cancels.
	f = Not(Not(p)).NNF()
	if f.Kind != KindAtom {
		t.Errorf("¬¬p NNF kind = %v, want atom", f.Kind)
	}
}

func TestSubformulasPostOrder(t *testing.T) {
	p := Atom(boolVar("p").Ref())
	q := Atom(boolVar("q").Ref())
	f := U(p, And(q, X(p)))
	subs := Subformulas(f)
	if subs[len(subs)-1] != f {
		t.Error("root must come last in post-order")
	}
	if len(subs) != 5 { // p, q, X p, q & X p, U
		t.Errorf("got %d subformulas, want 5", len(subs))
	}
}

func TestAtoms(t *testing.T) {
	pe := boolVar("p").Ref()
	qe := boolVar("q").Ref()
	f := And(Atom(pe), U(Atom(pe), Atom(qe)))
	atoms := Atoms(f)
	if len(atoms) != 2 {
		t.Errorf("Atoms = %d, want 2 (deduplicated)", len(atoms))
	}
}

func TestIsSafetyInvariant(t *testing.T) {
	p := boolVar("p")
	q := boolVar("q")
	if _, ok := IsSafetyInvariant(G(Atom(p.Ref()))); !ok {
		t.Error("G(atom) not recognized")
	}
	if e, ok := IsSafetyInvariant(G(And(Atom(p.Ref()), Not(Atom(q.Ref()))))); !ok {
		t.Error("G(boolean combination) not recognized")
	} else {
		v, err := expr.EvalBool(e, expr.MapEnv{p: expr.BoolValue(true), q: expr.BoolValue(false)}, nil)
		if err != nil || !v {
			t.Error("extracted predicate wrong")
		}
	}
	if _, ok := IsSafetyInvariant(G(F(Atom(p.Ref())))); ok {
		t.Error("G(F(p)) misrecognized as invariant")
	}
	if _, ok := IsSafetyInvariant(F(Atom(p.Ref()))); ok {
		t.Error("F(p) misrecognized")
	}
}

func TestFoldEmpty(t *testing.T) {
	f := And()
	if f.Kind != KindAtom || !f.Atom.IsTrue() {
		t.Errorf("empty And = %s, want true atom", f)
	}
	f = Or()
	if f.Kind != KindNot || f.L.Kind != KindAtom {
		t.Errorf("empty Or = %s, want ¬true", f)
	}
}
