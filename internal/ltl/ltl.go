// Package ltl defines linear temporal logic formulas over expr atoms,
// together with negation normal form and the bounded (lasso) semantics
// encoding used by the SAT- and SMT-based bounded model checkers.
//
// Safety properties like the paper's G(converged -> available >= m)
// and liveness properties like F(G(stable)) and
// stable -> F(G(stable)) are all expressible here.
package ltl

import (
	"fmt"

	"verdict/internal/expr"
)

// Kind enumerates formula constructors.
type Kind int

// Formula kinds.
const (
	KindAtom Kind = iota // boolean expression over system variables
	KindNot
	KindAnd
	KindOr
	KindX // next
	KindF // eventually
	KindG // always
	KindU // until
	KindR // release (dual of until)
)

// Formula is an immutable LTL formula tree.
type Formula struct {
	Kind Kind
	Atom *expr.Expr // KindAtom
	L, R *Formula   // operands (unary ops use L)
}

// Atom wraps a boolean expression as a formula. The expression must
// not reference next-state variables.
func Atom(e *expr.Expr) *Formula {
	if e.Type().Kind != expr.KindBool {
		panic(fmt.Sprintf("ltl: atom of type %s, want bool", e.Type()))
	}
	if expr.HasNext(e) {
		panic("ltl: atom mentions next(); use X instead")
	}
	return &Formula{Kind: KindAtom, Atom: e}
}

// True is the constant-true formula.
func True() *Formula { return Atom(expr.True()) }

// Not negates f.
func Not(f *Formula) *Formula { return &Formula{Kind: KindNot, L: f} }

// And conjoins formulas.
func And(fs ...*Formula) *Formula { return fold(KindAnd, fs) }

// Or disjoins formulas.
func Or(fs ...*Formula) *Formula { return fold(KindOr, fs) }

func fold(k Kind, fs []*Formula) *Formula {
	switch len(fs) {
	case 0:
		if k == KindAnd {
			return True()
		}
		return Not(True())
	case 1:
		return fs[0]
	}
	acc := fs[0]
	for _, f := range fs[1:] {
		acc = &Formula{Kind: k, L: acc, R: f}
	}
	return acc
}

// Implies returns a -> b as ¬a ∨ b.
func Implies(a, b *Formula) *Formula { return Or(Not(a), b) }

// X returns "next f".
func X(f *Formula) *Formula { return &Formula{Kind: KindX, L: f} }

// F returns "eventually f".
func F(f *Formula) *Formula { return &Formula{Kind: KindF, L: f} }

// G returns "always f".
func G(f *Formula) *Formula { return &Formula{Kind: KindG, L: f} }

// U returns "f until g" (strong until: g must eventually hold).
func U(f, g *Formula) *Formula { return &Formula{Kind: KindU, L: f, R: g} }

// R returns "f release g": g holds up to and including the first
// position where f holds; if f never holds, g holds forever.
func R(f, g *Formula) *Formula { return &Formula{Kind: KindR, L: f, R: g} }

// FWithin returns "f holds within d steps": f ∨ X f ∨ ... ∨ X^d f.
// With one transition per time unit this expresses the paper's §5
// real-time properties ("the system should converge within 5s") in
// plain LTL, checkable by every engine.
func FWithin(d int, f *Formula) *Formula {
	if d < 0 {
		panic("ltl: FWithin with negative bound")
	}
	out := f
	for i := 0; i < d; i++ {
		out = Or(f, X(out))
	}
	return out
}

// GWithin returns "f holds for the next d steps (inclusive of now)":
// f ∧ X f ∧ ... ∧ X^d f.
func GWithin(d int, f *Formula) *Formula {
	if d < 0 {
		panic("ltl: GWithin with negative bound")
	}
	out := f
	for i := 0; i < d; i++ {
		out = And(f, X(out))
	}
	return out
}

func (f *Formula) String() string {
	switch f.Kind {
	case KindAtom:
		return "(" + f.Atom.String() + ")"
	case KindNot:
		return "!" + f.L.String()
	case KindAnd:
		return "(" + f.L.String() + " & " + f.R.String() + ")"
	case KindOr:
		return "(" + f.L.String() + " | " + f.R.String() + ")"
	case KindX:
		return "X " + f.L.String()
	case KindF:
		return "F " + f.L.String()
	case KindG:
		return "G " + f.L.String()
	case KindU:
		return "(" + f.L.String() + " U " + f.R.String() + ")"
	case KindR:
		return "(" + f.L.String() + " R " + f.R.String() + ")"
	}
	return "?"
}

// NNF pushes negations down to atoms, eliminating F and G in favor of
// U and R: F f = true U f, G f = false R f.
func (f *Formula) NNF() *Formula { return nnf(f, false) }

func nnf(f *Formula, neg bool) *Formula {
	switch f.Kind {
	case KindAtom:
		if neg {
			return Atom(expr.Not(f.Atom))
		}
		return f
	case KindNot:
		return nnf(f.L, !neg)
	case KindAnd:
		k := KindAnd
		if neg {
			k = KindOr
		}
		return &Formula{Kind: k, L: nnf(f.L, neg), R: nnf(f.R, neg)}
	case KindOr:
		k := KindOr
		if neg {
			k = KindAnd
		}
		return &Formula{Kind: k, L: nnf(f.L, neg), R: nnf(f.R, neg)}
	case KindX:
		return &Formula{Kind: KindX, L: nnf(f.L, neg)}
	case KindF: // F f = true U f; ¬F f = false R ¬f
		if neg {
			return &Formula{Kind: KindR, L: nnf(falseF(), false), R: nnf(f.L, true)}
		}
		return &Formula{Kind: KindU, L: True(), R: nnf(f.L, false)}
	case KindG: // G f = false R f; ¬G f = true U ¬f
		if neg {
			return &Formula{Kind: KindU, L: True(), R: nnf(f.L, true)}
		}
		return &Formula{Kind: KindR, L: falseF(), R: nnf(f.L, false)}
	case KindU:
		if neg {
			return &Formula{Kind: KindR, L: nnf(f.L, true), R: nnf(f.R, true)}
		}
		return &Formula{Kind: KindU, L: nnf(f.L, false), R: nnf(f.R, false)}
	case KindR:
		if neg {
			return &Formula{Kind: KindU, L: nnf(f.L, true), R: nnf(f.R, true)}
		}
		return &Formula{Kind: KindR, L: nnf(f.L, false), R: nnf(f.R, false)}
	}
	panic("ltl: bad kind")
}

func falseF() *Formula { return Atom(expr.False()) }

// Subformulas returns every distinct subformula of f (post-order,
// structural identity).
func Subformulas(f *Formula) []*Formula {
	var out []*Formula
	seen := make(map[*Formula]bool)
	var rec func(*Formula)
	rec = func(g *Formula) {
		if g == nil || seen[g] {
			return
		}
		seen[g] = true
		rec(g.L)
		rec(g.R)
		out = append(out, g)
	}
	rec(f)
	return out
}

// Atoms returns the distinct atom expressions of f.
func Atoms(f *Formula) []*expr.Expr {
	var out []*expr.Expr
	seen := make(map[*expr.Expr]bool)
	for _, g := range Subformulas(f) {
		if g.Kind == KindAtom && !seen[g.Atom] {
			seen[g.Atom] = true
			out = append(out, g.Atom)
		}
	}
	return out
}

// IsSafetyInvariant reports whether f has the shape G(p) for a pure
// state predicate p, returning p. The BMC and k-induction safety
// engines fast-path this form.
func IsSafetyInvariant(f *Formula) (*expr.Expr, bool) {
	if f.Kind != KindG {
		return nil, false
	}
	if p, ok := pureState(f.L); ok {
		return p, true
	}
	return nil, false
}

func pureState(f *Formula) (*expr.Expr, bool) {
	switch f.Kind {
	case KindAtom:
		return f.Atom, true
	case KindNot:
		if p, ok := pureState(f.L); ok {
			return expr.Not(p), true
		}
	case KindAnd:
		if p, ok := pureState(f.L); ok {
			if q, ok := pureState(f.R); ok {
				return expr.And(p, q), true
			}
		}
	case KindOr:
		if p, ok := pureState(f.L); ok {
			if q, ok := pureState(f.R); ok {
				return expr.Or(p, q), true
			}
		}
	}
	return nil, false
}
